// Equality-encoded bitmap index (FastBit's default): one WAH-compressed
// bitmap per bin. Range queries OR the bitmaps of bins fully inside the
// interval and verify the (at most two) boundary bins against the raw
// column — the two-step evaluation described in DESIGN.md Section 3.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "bitmap/bins.hpp"
#include "bitmap/bitvector.hpp"
#include "bitmap/interval.hpp"

namespace qdv {

/// Index-only answer of a range condition: rows certainly matching plus rows
/// that need a candidate check against the raw column.
struct ApproxAnswer {
  BitVector hits;
  BitVector candidates;
};

namespace detail {
/// Classification of the bin range covered by an interval: bins
/// [full_lo, full_hi] are certain hits (empty when full_lo > full_hi);
/// partial bins need a candidate check.
struct BinCoverage {
  std::ptrdiff_t full_lo = 0;
  std::ptrdiff_t full_hi = -1;
  std::vector<std::size_t> partial;
};
BinCoverage classify_bins(const Bins& bins, const Interval& iv);

/// Per-row bin assignment used by all index builders: positions grouped by
/// bin (ascending within each bin) plus the rows outside the bin range.
struct BinnedRows {
  std::vector<std::uint32_t> grouped;     // row ids, grouped by bin
  std::vector<std::size_t> offsets;       // per-bin [offsets[b], offsets[b+1])
  std::vector<std::uint32_t> outside;     // rows not covered by the bins
};
BinnedRows bin_rows(std::span<const double> values, const Bins& bins);

/// Second step of the two-step evaluation, shared by every index encoding:
/// verify the candidate rows against the raw column and fold the survivors
/// into the hits.
BitVector resolve_candidates(const Interval& iv, ApproxAnswer approx,
                             std::span<const double> values,
                             std::uint64_t nrows);
}  // namespace detail

class BitmapIndex {
 public:
  static BitmapIndex build(std::span<const double> values, const Bins& bins);

  /// Index-only evaluation: hits plus candidate rows (boundary bins and rows
  /// outside the binned range).
  ApproxAnswer evaluate_approx(const Interval& iv) const;

  /// Full two-step evaluation: index answer plus candidate check against the
  /// raw column values.
  BitVector evaluate(const Interval& iv, std::span<const double> values) const;

  const Bins& bins() const { return bins_; }
  std::uint64_t num_rows() const { return nrows_; }
  const BitVector& bin_bitmap(std::size_t bin) const { return bitmaps_[bin]; }
  std::size_t memory_bytes() const;

  void save(std::ostream& out) const;
  static BitmapIndex load(std::istream& in);

 private:
  Bins bins_;
  std::uint64_t nrows_ = 0;
  std::vector<BitVector> bitmaps_;  // one per bin
  BitVector outside_;               // rows outside [bins.lo, bins.hi]
};

/// Row lookup index over an unsigned integer identifier column.
class IdIndex {
 public:
  static IdIndex build(std::span<const std::uint64_t> ids);

  /// Rows whose id is in @p search, ascending and deduplicated — the same
  /// result (and order) a sequential scan would produce.
  std::vector<std::uint32_t> lookup_rows(std::span<const std::uint64_t> search) const;

  /// Row of a single id, or -1 if absent.
  std::ptrdiff_t lookup_row(std::uint64_t id) const;

  std::uint64_t num_rows() const { return rows_.size(); }
  std::size_t memory_bytes() const;

  void save(std::ostream& out) const;
  static IdIndex load(std::istream& in);

 private:
  std::vector<std::uint64_t> sorted_ids_;
  std::vector<std::uint32_t> rows_;  // rows_[i] = row of sorted_ids_[i]
};

}  // namespace qdv
