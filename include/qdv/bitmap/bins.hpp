// Bin boundary sets for bitmap indices and histograms: uniform, quantile
// (equal-count), and precision binning (bin edges on round decimal values, so
// low-precision range constants are answered from the index alone).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "bitmap/simd.hpp"

namespace qdv {

class Bins {
 public:
  Bins() = default;
  explicit Bins(std::vector<double> edges);

  /// Cached, fully-inlineable bin lookup for hot loops: uniform bin sets
  /// take a branchless `(v - lo) * inv_width` + clamp path, non-uniform
  /// ones a fixed-shape halving search over the cached edge array — either
  /// way no out-of-line call per value. Returns the same bin as
  /// Bins::locate for every input (locate stays the scalar reference used
  /// by the differential tests). Borrows the Bins' edge storage: the Bins
  /// must outlive the Locator.
  class Locator {
   public:
    explicit Locator(const Bins& bins)
        : edges_(bins.edges_.data()),
          nedges_(bins.edges_.size()),
          last_(static_cast<std::ptrdiff_t>(bins.num_bins()) - 1),
          inv_width_(bins.inv_width_),
          lo_(bins.edges_.empty() ? 0.0 : bins.edges_.front()),
          hi_(bins.edges_.empty() ? 0.0 : bins.edges_.back()),
          width_(bins.width_),
          uniform_(bins.uniform_),
          affine_(bins.affine_),
          empty_(bins.edges_.size() < 2) {}

    std::ptrdiff_t operator()(double value) const {
      // The negated comparison also rejects NaN (which would otherwise hit
      // the float->integer cast, undefined behavior).
      if (empty_ || !(value >= lo_ && value <= hi_)) return -1;
      if (uniform_) {
        auto bin = static_cast<std::ptrdiff_t>((value - lo_) * inv_width_);
        bin = bin > last_ ? last_ : bin;
        // Settle one-ulp disagreements between the arithmetic and the
        // stored edges, exactly as Bins::locate does.
        if (value < edges_[bin]) {
          --bin;
        } else if (bin < last_ && value >= edges_[bin + 1]) {
          ++bin;
        }
        return bin;
      }
      // Halving search for the last edge <= value: fixed iteration shape,
      // no per-step bounds branch.
      std::size_t lo = 0;
      std::size_t n = nedges_;
      while (n > 1) {
        const std::size_t half = n / 2;
        lo += edges_[lo + half] <= value ? half : 0;
        n -= half;
      }
      return std::min(static_cast<std::ptrdiff_t>(lo), last_);
    }

    /// Flattened POD view for the SIMD dispatch table (simd.hpp): same
    /// cached fields, no class dependency. Borrows the edge storage, so the
    /// same lifetime rule applies (the Bins must outlive the view).
    simd::LocatorView view() const {
      simd::LocatorView v;
      v.edges = edges_;
      v.nedges = nedges_;
      v.last = static_cast<std::int64_t>(last_);
      v.inv_width = inv_width_;
      v.lo = lo_;
      v.hi = hi_;
      v.width = width_;
      v.uniform = uniform_;
      v.affine = affine_;
      v.empty = empty_;
      return v;
    }

   private:
    const double* edges_;
    std::size_t nedges_;
    std::ptrdiff_t last_;
    double inv_width_;
    double lo_;
    double hi_;
    double width_;
    bool uniform_;
    bool affine_;
    bool empty_;
  };

  std::size_t num_bins() const { return edges_.empty() ? 0 : edges_.size() - 1; }
  const std::vector<double>& edges() const { return edges_; }
  double lo() const { return edges_.front(); }
  double hi() const { return edges_.back(); }
  double width(std::size_t bin) const { return edges_[bin + 1] - edges_[bin]; }

  /// Bin index of @p value, or -1 if outside [lo, hi]. Bins are half-open
  /// [e_i, e_{i+1}) except the last, which is closed. Uniform bin sets use an
  /// O(1) arithmetic path. Scalar reference for Locator: per-value loops on
  /// hot paths should build a Locator once instead.
  std::ptrdiff_t locate(double value) const;

  /// Build the cached lookup for this bin set (see Locator).
  Locator locator() const { return Locator(*this); }

  bool is_uniform() const { return uniform_; }

  bool operator==(const Bins& other) const { return edges_ == other.edges_; }

 private:
  std::vector<double> edges_;
  bool uniform_ = false;
  bool affine_ = false;  // edges bit-exactly lo + k*width (see bins.cpp)
  double inv_width_ = 0.0;  // 1 / uniform bin width
  double width_ = 0.0;      // uniform bin width
};

/// @p nbins equal-width bins over [lo, hi].
Bins make_uniform_bins(double lo, double hi, std::size_t nbins);

/// Equal-count bins from the empirical distribution of @p values.
Bins make_quantile_bins(std::span<const double> values, std::size_t nbins);

/// Bin edges on multiples of a power-of-ten step so that any range constant
/// with at most @p digits significant decimal digits falls exactly on an
/// edge (no candidate check needed). The step is coarsened until the bin
/// count fits within @p max_bins.
Bins make_precision_bins(double lo, double hi, int digits, std::size_t max_bins);

}  // namespace qdv
