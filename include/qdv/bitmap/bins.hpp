// Bin boundary sets for bitmap indices and histograms: uniform, quantile
// (equal-count), and precision binning (bin edges on round decimal values, so
// low-precision range constants are answered from the index alone).
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace qdv {

class Bins {
 public:
  Bins() = default;
  explicit Bins(std::vector<double> edges);

  std::size_t num_bins() const { return edges_.empty() ? 0 : edges_.size() - 1; }
  const std::vector<double>& edges() const { return edges_; }
  double lo() const { return edges_.front(); }
  double hi() const { return edges_.back(); }
  double width(std::size_t bin) const { return edges_[bin + 1] - edges_[bin]; }

  /// Bin index of @p value, or -1 if outside [lo, hi]. Bins are half-open
  /// [e_i, e_{i+1}) except the last, which is closed. Uniform bin sets use an
  /// O(1) arithmetic path.
  std::ptrdiff_t locate(double value) const;

  bool is_uniform() const { return uniform_; }

  bool operator==(const Bins& other) const { return edges_ == other.edges_; }

 private:
  std::vector<double> edges_;
  bool uniform_ = false;
  double inv_width_ = 0.0;  // 1 / uniform bin width
};

/// @p nbins equal-width bins over [lo, hi].
Bins make_uniform_bins(double lo, double hi, std::size_t nbins);

/// Equal-count bins from the empirical distribution of @p values.
Bins make_quantile_bins(std::span<const double> values, std::size_t nbins);

/// Bin edges on multiples of a power-of-ten step so that any range constant
/// with at most @p digits significant decimal digits falls exactly on an
/// edge (no candidate check needed). The step is coarsened until the bin
/// count fits within @p max_bins.
Bins make_precision_bins(double lo, double hi, int digits, std::size_t max_bins);

}  // namespace qdv
