// Segment-wise (lazy) view of a serialized equality-encoded bitmap index.
//
// A BitmapIndex image on disk (`<var>.bmi`, DESIGN.md Section 2) is a
// header (row count + bin edges) followed by one WAH bitmap per bin and a
// final "outside" bitmap. SegmentedBitmapIndex parses only the header and a
// byte-offset directory of the segments, so opening an index touches O(bins)
// record headers instead of deserializing every bitmap; a range query then
// decodes only the segments its bin coverage actually needs — the
// out-of-core counterpart of BitmapIndex (DESIGN.md Section 9).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "bitmap/bins.hpp"
#include "bitmap/bitmap_index.hpp"
#include "bitmap/bitvector.hpp"
#include "bitmap/interval.hpp"

namespace qdv {

/// Lazily-decoded bitmap index over a serialized image.
///
/// Ownership: the index holds a pin (@p keeper) on the byte image it was
/// opened over — typically an io::MappedFile — so the image outlives the
/// index regardless of who mapped it. Decoded segments are returned by
/// value (or through the caller's fetch hook); the index itself stays
/// metadata-sized (edges + offsets).
/// Thread-safety: immutable after open(); decode/evaluate are const and
/// safe to call concurrently.
class SegmentedBitmapIndex {
 public:
  SegmentedBitmapIndex() = default;

  /// Parse the header and segment directory of @p image (a serialized
  /// BitmapIndex). @p keeper keeps the image bytes alive. Throws
  /// std::runtime_error on a truncated image.
  static SegmentedBitmapIndex open(std::span<const std::byte> image,
                                   std::shared_ptr<const void> keeper);

  const Bins& bins() const { return bins_; }
  std::uint64_t num_rows() const { return nrows_; }

  /// Segments 0..num_bins()-1 are the per-bin bitmaps; segment num_bins()
  /// is the "outside the binned range" bitmap.
  std::size_t num_segments() const { return offsets_.size() - 1; }
  std::size_t outside_segment() const { return num_segments() - 1; }

  /// Serialized byte length of segment @p s (what a decode reads).
  std::uint64_t segment_bytes(std::size_t s) const {
    return offsets_[s + 1] - offsets_[s];
  }

  /// Byte offset of segment @p s in the image — segment_offset(0) is also
  /// the header length. With segment_bytes() this names the exact byte
  /// range a decode touches, which is the granularity the integrity layer
  /// records checksums at (io/checksum.hpp).
  std::uint64_t segment_offset(std::size_t s) const { return offsets_[s]; }

  /// Decode segment @p s from the image (no caching at this level).
  BitVector decode_segment(std::size_t s) const;

  /// Raw serialized bytes of segment @p s — what the integrity layer
  /// checksums before a decode trusts them.
  std::span<const std::byte> segment_image(std::size_t s) const {
    return image_.subspan(offsets_[s], segment_bytes(s));
  }

  /// True when the outside bitmap has no set bits (checked once at open;
  /// lets range evaluation skip the outside candidate segment entirely).
  bool outside_empty() const { return outside_empty_; }

  /// Supplies a (possibly cached) decoded segment; the io layer backs this
  /// with the engine's MemoryBudget.
  using SegmentFetch =
      std::function<std::shared_ptr<const BitVector>(std::size_t segment)>;

  /// Index-only two-step evaluation of @p iv, decoding only the segments
  /// the bin coverage touches. Without @p fetch, segments are decoded
  /// directly from the image each call.
  ApproxAnswer evaluate_approx(const Interval& iv,
                               const SegmentFetch& fetch = {}) const;

  /// Full two-step evaluation against the raw column (candidate check).
  BitVector evaluate(const Interval& iv, std::span<const double> values,
                     const SegmentFetch& fetch = {}) const;

  /// Heap bytes of the directory itself (edges + offsets), i.e. the cost of
  /// keeping the index open without any decoded segment.
  std::size_t metadata_bytes() const;

 private:
  Bins bins_;
  std::uint64_t nrows_ = 0;
  std::vector<std::uint64_t> offsets_;  // segment s = [offsets_[s], offsets_[s+1])
  std::span<const std::byte> image_;
  std::shared_ptr<const void> keeper_;
  bool outside_empty_ = true;
};

}  // namespace qdv
