// Conditional histograms through the FastBit-style two-step evaluation:
// the condition is answered by the bitmap indices first, then only the
// matching records are gathered and binned (DESIGN.md Section 5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bitmap/bins.hpp"
#include "bitmap/bitvector.hpp"
#include "core/query.hpp"

namespace qdv {

namespace io {
class TimestepTable;
}  // namespace io

enum class BinningMode {
  kUniform,   // equal-width bins over the variable's domain
  kAdaptive,  // equal-weight bins via oversample + merge
};

struct Histogram1D {
  Bins bins;
  std::vector<std::uint64_t> counts;

  std::uint64_t total() const;
  std::uint64_t max_count() const;
  std::size_t nonempty_bins() const;
};

struct Histogram2D {
  Bins xbins;
  Bins ybins;
  std::vector<std::uint64_t> counts;  // row-major: counts[ix * ny + iy]

  std::size_t nx() const { return xbins.num_bins(); }
  std::size_t ny() const { return ybins.num_bins(); }
  std::uint64_t& at(std::size_t ix, std::size_t iy) { return counts[ix * ny() + iy]; }
  std::uint64_t at(std::size_t ix, std::size_t iy) const { return counts[ix * ny() + iy]; }
  /// Count per unit area — comparable across non-uniform (adaptive) bins.
  double density(std::size_t ix, std::size_t iy) const;

  std::uint64_t total() const;
  std::uint64_t max_count() const;
  std::size_t nonempty_bins() const;
};

/// Equal-weight bins derived from a finer histogram: greedily merge fine
/// bins until each merged bin holds ~total/nbins records (the paper's
/// adaptive binning, Section III-B).
Bins make_equal_weight_bins(const Histogram1D& fine, std::size_t nbins);

/// Adaptive bins over [lo, hi]: oversample @p values with a fine uniform
/// histogram, then merge to @p nbins equal-weight bins. Shared by the
/// table-domain engine and the session's global-domain axes.
Bins make_adaptive_bins(double lo, double hi, std::span<const double> values,
                        std::size_t nbins);

/// Index-backed histogram computation over one timestep table. Lightweight
/// handle: obtained from TimestepTable::engine().
class HistogramEngine {
 public:
  HistogramEngine(const io::TimestepTable& table, EvalMode mode)
      : table_(&table), mode_(mode) {}

  Histogram1D histogram1d(const std::string& variable, std::size_t nbins,
                          const Query* condition = nullptr,
                          BinningMode binning = BinningMode::kUniform) const;

  Histogram2D histogram2d(const std::string& x, const std::string& y,
                          std::size_t nxbins, std::size_t nybins,
                          const Query* condition = nullptr,
                          BinningMode binning = BinningMode::kUniform) const;

  /// Variants over an already-evaluated row set — the path Selection uses
  /// so a cached condition bitvector is not re-derived.
  Histogram1D histogram1d(const std::string& variable, std::size_t nbins,
                          const BitVector& rows,
                          BinningMode binning = BinningMode::kUniform) const;

  Histogram2D histogram2d(const std::string& x, const std::string& y,
                          std::size_t nxbins, std::size_t nybins,
                          const BitVector& rows,
                          BinningMode binning = BinningMode::kUniform) const;

  /// Variants over caller-supplied bin edges — the exact twin of a
  /// pyramid-served zoom window (core::Selection::zoom_histogram*), where
  /// the edges come from the pyramid's snapped level slice rather than the
  /// table domain.
  Histogram1D histogram1d(const std::string& variable, const Bins& bins,
                          const BitVector& rows) const;

  Histogram2D histogram2d(const std::string& x, const std::string& y,
                          const Bins& xbins, const Bins& ybins,
                          const BitVector& rows) const;

  EvalMode mode() const { return mode_; }

 private:
  Bins bins_for(const std::string& variable, std::size_t nbins,
                BinningMode binning) const;

  const io::TimestepTable* table_;
  EvalMode mode_;
};

}  // namespace qdv
