// Runtime-dispatched SIMD kernels (DESIGN.md Section 12): AVX2 and AVX-512
// implementations of the flat per-row inner loops — set-bit position
// extraction, vectorized bin location, and masked histogram accumulate —
// selected once at startup via CPUID, with a scalar fallback that is always
// built and always available.
//
// Each ISA level lives in its own translation unit compiled with per-file
// target flags (src/bitmap/simd_scalar.cpp / simd_avx2.cpp /
// simd_avx512.cpp); this header is ISA-agnostic and safe to include
// anywhere. Every function-pointer table produces results bit-identical to
// the scalar level — the differential tests in tests/test_kernels.cpp force
// each level and compare.
#pragma once

#include <cstddef>
#include <cstdint>

namespace qdv::simd {

/// Instruction-set levels, ordered: a level implies all lower ones.
enum class Isa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Human-readable name ("scalar", "avx2", "avx512").
const char* isa_name(Isa isa);

/// Best level both compiled into this binary and supported by the CPU
/// (CPUID, probed once).
Isa best_supported();

/// True when @p isa is usable on this host (compiled in + CPU support).
bool supported(Isa isa);

/// The level the dispatch tables currently route to. Initialized on first
/// use to best_supported(), clamped down by QDV_FORCE_ISA=scalar|avx2|avx512
/// when set (forcing an unavailable level falls back to the best available
/// level at or below it).
Isa active();

/// Override the active level (clamped to supported levels at or below
/// @p isa); returns the level that took effect. Benchmarks and tests use
/// this to sweep levels inside one process; it is not meant to be called
/// concurrently with running queries.
Isa force(Isa isa);

/// Parse an ISA name ("scalar" / "avx2" / "avx512", case-sensitive);
/// returns @p fallback for null or unrecognized text.
Isa parse_isa(const char* text, Isa fallback);

/// Flattened POD view of a Bins::Locator (see Bins::Locator::view()): the
/// vector kernels read the cached edge array and uniform-bin constants
/// through this so the dispatch table needs no class dependency. Borrows
/// the locator's edge storage.
struct LocatorView {
  const double* edges = nullptr;
  std::size_t nedges = 0;
  std::int64_t last = -1;  // num_bins() - 1
  double inv_width = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  double width = 0.0;  // uniform bin width (valid when uniform)
  bool uniform = false;
  /// True when every edge the uniform verify step can read satisfies
  /// edges[k] == lo + k * width bit-for-bit under mul-then-add rounding
  /// (detected at Bins construction). The vector kernels then synthesize
  /// the verify edges in-register instead of gathering them.
  bool affine = false;
  bool empty = true;
};

/// Position kernels may overstore up to this many elements past the
/// reported count (full-vector stores with a partial lane count); callers
/// must provide that much slack in the output buffer.
inline constexpr std::size_t kPositionSlack = 16;

/// Row batches shorter than this stay scalar: gather + locate setup cannot
/// amortize (the batch-level half of the selectivity gate).
inline constexpr std::size_t kMinVectorRows = 16;

/// Average gathered-row spacing (in doubles) beyond which the rows kernels
/// stay scalar: each lane then sits on its own cold cache line and the
/// kernel is latency-bound either way, so the vector setup cannot win —
/// the per-batch half of the selectivity gate. Callers route such batches
/// to the scalar table (baseline-compiled code, not a vector-TU copy); the
/// vector kernels re-check as a safety net for direct Ops users.
inline constexpr std::size_t kSparseRowSpacing = 32;

inline bool rows_are_sparse(const std::uint32_t* rows, std::size_t n) {
  return static_cast<std::size_t>(rows[n - 1] - rows[0]) >
         n * kSparseRowSpacing;
}

/// One ISA level's kernel table. All entries are non-null at every level.
struct Ops {
  Isa isa;

  /// Ascending positions of the set bits of @p nwords dense 64-bit words
  /// (LSB-first; word w covers rows [base + 64w, base + 64w + 63]). Writes
  /// to @p out (plus kPositionSlack slack), returns the count written.
  std::size_t (*positions_from_words)(const std::uint64_t* words,
                                      std::size_t nwords, std::uint64_t base,
                                      std::uint32_t* out);

  /// Same over 31-bit WAH literal groups (group g covers rows
  /// [base + 31g, base + 31g + 30]; bit 31 of each word is ignored).
  std::size_t (*positions_from_groups)(const std::uint32_t* groups,
                                       std::size_t ngroups, std::uint64_t base,
                                       std::uint32_t* out);

  /// counts[loc(values[rows[i]])]++ for each of @p n row indices; values
  /// outside the bin range (including NaN) are dropped exactly as
  /// Bins::Locator does.
  void (*hist1d_rows)(const std::uint32_t* rows, std::size_t n,
                      const double* values, const LocatorView& loc,
                      std::uint64_t* counts);

  /// Row-major 2D variant: counts[bx * ny + by]++ when both locate.
  void (*hist2d_rows)(const std::uint32_t* rows, std::size_t n,
                      const double* xs, const double* ys,
                      const LocatorView& xloc, const LocatorView& yloc,
                      std::size_t ny, std::uint64_t* counts);

  /// Contiguous-row variants (row range handled by the caller): used for
  /// one-fill runs of a selection and for unconditional histograms.
  void (*hist1d_dense)(const double* values, std::size_t n,
                       const LocatorView& loc, std::uint64_t* counts);
  void (*hist2d_dense)(const double* xs, const double* ys, std::size_t n,
                       const LocatorView& xloc, const LocatorView& yloc,
                       std::size_t ny, std::uint64_t* counts);
};

/// Kernel table of the active level.
const Ops& ops();

/// Kernel table of an explicit level; @p isa must satisfy supported().
const Ops& ops_for(Isa isa);

// ------------------------------------------------------------------------
// Dispatch observability: per-kernel-family counts of how often the public
// kernels (to_positions, gather_hist1d/2d and the unconditional histogram
// loops) routed to a vector level vs the scalar fallback. Exposed through
// EngineStats and `qdv_tool query --stats`.
// ------------------------------------------------------------------------

struct KernelDispatch {
  std::uint64_t scalar = 0;
  std::uint64_t vector = 0;
};

struct DispatchCounts {
  KernelDispatch positions;
  KernelDispatch hist1d;
  KernelDispatch hist2d;
};

DispatchCounts dispatch_counts();
void reset_dispatch_counts();

/// Counting hooks used by the kernel entry points (relaxed atomics).
void count_positions_call(bool vector);
void count_hist1d_call(bool vector);
void count_hist2d_call(bool vector);

namespace detail {
/// Per-TU table accessors; an ISA's accessor returns nullptr when its
/// translation unit was compiled without the matching target support.
const Ops* scalar_ops();
const Ops* avx2_ops();
const Ops* avx512_ops();
}  // namespace detail

}  // namespace qdv::simd
