// Interval-encoded bitmap index (Chan & Ioannidis): stores bitmaps
// I_k = rows with a value in bins [k, k + m - 1] for a sliding window of
// m = ceil(nbins / 2) bins. Threshold queries are answered with at most two
// stored bitmaps; arbitrary interior ranges with at most four (see
// DESIGN.md Section 4), with roughly half the storage of range encoding.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitmap/bitmap_index.hpp"

namespace qdv {

class IntervalEncodedIndex {
 public:
  static IntervalEncodedIndex build(std::span<const double> values, const Bins& bins);

  ApproxAnswer evaluate_approx(const Interval& iv) const;
  BitVector evaluate(const Interval& iv, std::span<const double> values) const;

  const Bins& bins() const { return bins_; }
  std::uint64_t num_rows() const { return nrows_; }
  std::size_t memory_bytes() const;

 private:
  /// Bitmap of the suffix bin range [first, nbins - 1]; composed from at
  /// most two stored window bitmaps.
  BitVector suffix(std::ptrdiff_t first) const;

  Bins bins_;
  std::uint64_t nrows_ = 0;
  std::size_t window_ = 0;          // m
  std::vector<BitVector> windows_;  // I_0 .. I_{nbins - m}
  BitVector outside_;
};

}  // namespace qdv
