// Range-encoded bitmap index: stores cumulative bitmaps C_i = rows with a
// value in bins [0, i]. Any contiguous bin range is answered with two
// cumulative bitmaps (one for the paper's dominant `px > t` threshold
// shape), at the cost of denser, less compressible bitmaps than the
// equality encoding.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitmap/bitmap_index.hpp"

namespace qdv {

class RangeEncodedIndex {
 public:
  static RangeEncodedIndex build(std::span<const double> values, const Bins& bins);

  ApproxAnswer evaluate_approx(const Interval& iv) const;
  BitVector evaluate(const Interval& iv, std::span<const double> values) const;

  const Bins& bins() const { return bins_; }
  std::uint64_t num_rows() const { return nrows_; }
  std::size_t memory_bytes() const;

 private:
  /// Bitmap of rows whose bin is in [0, i]; i == num_bins()-1 is implicit
  /// (all binned rows) and synthesized on demand.
  BitVector prefix(std::ptrdiff_t i) const;

  Bins bins_;
  std::uint64_t nrows_ = 0;
  std::vector<BitVector> cumulative_;  // C_0 .. C_{nbins-2}
  BitVector outside_;
};

}  // namespace qdv
