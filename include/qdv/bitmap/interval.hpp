// A one-dimensional range condition with optional open/closed endpoints —
// the common currency between the query AST, the planner's fused interval
// predicates, and every bitmap index encoding.
#pragma once

#include <limits>

namespace qdv {

/// A one-dimensional range condition with optional open/closed endpoints.
struct Interval {
  double lo;
  double hi;
  bool lo_open = true;  // lo excluded from the interval
  bool hi_open = true;  // hi excluded from the interval

  static Interval greater_than(double v);
  static Interval at_least(double v);
  static Interval less_than(double v);
  static Interval at_most(double v);
  /// [lo, hi)
  static Interval between(double lo, double hi);
  /// (-inf, +inf): matches every finite value.
  static Interval everything();

  bool contains(double x) const {
    return (lo_open ? x > lo : x >= lo) && (hi_open ? x < hi : x <= hi);
  }

  /// True when no value can satisfy the interval.
  bool empty() const {
    if (lo > hi) return true;
    return lo == hi && (lo_open || hi_open);
  }

  bool bounded_below() const {
    return lo > -std::numeric_limits<double>::infinity();
  }
  bool bounded_above() const {
    return hi < std::numeric_limits<double>::infinity();
  }

  bool operator==(const Interval& other) const = default;
};

/// Intersection of two intervals: the tightest bound wins on each side (an
/// open endpoint beats a closed one at the same value). The result may be
/// empty() — callers decide how to represent contradictions.
Interval intersect(const Interval& a, const Interval& b);

}  // namespace qdv
