// Hierarchical histogram pyramids (DESIGN.md §14): per-column and
// per-column-pair coarse→fine power-of-two bin trees persisted as `.pyr`
// files next to the `.bmi` segments. A zoom/pan histogram request resolves
// at the coarsest level whose snapped viewport still carries the requested
// bin count — O(visible bins) instead of O(selected rows) — and a marginal
// range condition is answered by classifying each node against the
// condition interval, descending only through partially-covered nodes.
//
// Exactness contract: level-l edge j is leaf_edge[j << (L-l)] — a strided
// subset of the leaf edge array, never recomputed — so a level's bins tile
// the leaf bins exactly and every pyramid-served count equals the exact
// kernel path bit for bit (test_pyramid enforces this differentially).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bitmap/bins.hpp"
#include "bitmap/interval.hpp"
#include "io/checksum.hpp"
#include "io/memory_budget.hpp"

namespace qdv::agg {

/// Hook-up to the integrity layer (io/checksum.hpp, DESIGN.md §15): the
/// directory's checksum set, this pyramid's sidecar key (its file name),
/// and the dataset-wide counters. All members optional — a default
/// PyramidIntegrity opens the file unverified.
struct PyramidIntegrity {
  std::shared_ptr<const io::ChecksumSet> sums;
  std::string file_name;
  std::shared_ptr<io::IntegrityStats> stats;
};

/// How a pyramid node's value range relates to a condition interval.
enum class Cover { kOutside, kPartial, kInside };

/// One snapped viewport on one pyramid axis: bin window [lo, hi) at `level`
/// (level 0 = root = one bin per axis; level leaf_log2() = leaf grid).
struct SlicePlan {
  std::size_t level = 0;
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::size_t bins() const { return hi - lo; }
  bool operator==(const SlicePlan&) const = default;
};

/// An immutable on-disk histogram pyramid over one column (ndims()==1) or
/// one column pair (ndims()==2).
///
/// Storage: the header and edge arrays are read eagerly at open() (a few
/// KB); per-level count arrays are read lazily by level() and cached in the
/// io::MemoryBudget under ResidentClass::kPyramid, so a pyramid larger than
/// the budget still serves queries through partial residency.
///
/// Thread-safety: all const methods are safe to call concurrently; lazy
/// level loads go through pread on a shared descriptor.
class Pyramid {
 public:
  /// Build an in-memory 1D pyramid: tally @p values into @p leaf (whose bin
  /// count must be a power of two), then reduce pairwise up to the root.
  /// NaN and values outside the leaf domain are dropped (Bins::locate
  /// semantics), exactly as the histogram kernels drop them.
  static Pyramid build1d(std::span<const double> values, Bins leaf);

  /// 2D analog over a column pair; both leaf grids must share one power-of-
  /// two bin count. Level-l counts are row-major [i0 * 2^l + i1].
  static Pyramid build2d(std::span<const double> v0, std::span<const double> v1,
                         Bins leaf0, Bins leaf1);

  void save(const std::filesystem::path& file) const;

  /// Open a `.pyr` file: header + edges eager, levels lazy (budget-cached
  /// under keys "<budget_prefix>|L<l>" when @p budget is non-null, else in a
  /// small local cache). Throws std::runtime_error on a missing or
  /// malformed file, io::IntegrityError when @p integrity records a header
  /// checksum that does not match. Level loads verify per-level checksums
  /// the same way; a mismatching level quarantines the pyramid (see
  /// quarantined()) and throws io::IntegrityError — the zoom layer then
  /// falls back to the exact kernels.
  static std::shared_ptr<Pyramid> open(
      const std::filesystem::path& file,
      std::shared_ptr<io::MemoryBudget> budget = nullptr,
      std::string budget_prefix = {}, PyramidIntegrity integrity = {});

  /// True once a level checksum mismatch (or quarantine()) marked this
  /// pyramid unusable: the table accessors then report it absent, so every
  /// later zoom routes to the exact path without re-verifying.
  bool quarantined() const;
  /// Mark unusable (idempotent; first call counts one integrity demotion).
  /// Called internally on checksum mismatch and by the zoom layer when a
  /// level read fails structurally (truncated file).
  void quarantine() const;

  /// Byte ranges of the on-disk file that are read as units — the header
  /// (offset 0) and each level's count array — i.e. the sections the
  /// integrity layer checksums. Only valid for file-backed pyramids.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> file_sections() const;

  std::size_t ndims() const { return edges_.size(); }
  /// Per-axis leaf bins = 1 << leaf_log2(); levels run 0..leaf_log2().
  std::size_t leaf_log2() const { return leaf_log2_; }
  std::size_t num_levels() const { return leaf_log2_ + 1; }
  /// Rows tallied at build time (including rows dropped as out-of-domain).
  std::uint64_t rows() const { return rows_; }
  /// Per-axis bins at @p level.
  std::size_t bins_at(std::size_t level) const { return std::size_t{1} << level; }
  const std::vector<double>& leaf_edges(std::size_t axis) const {
    return edges_[axis];
  }
  /// Level-l edge j on @p axis == leaf edge [j << (leaf_log2 - l)].
  double edge(std::size_t axis, std::size_t level, std::size_t j) const {
    return edges_[axis][j << (leaf_log2_ - level)];
  }

  /// Level-l counts (1D: 2^l entries; 2D: 4^l, row-major), lazily loaded.
  /// The returned pin stays valid across eviction.
  std::shared_ptr<const std::vector<std::uint64_t>> level(std::size_t l) const;

  /// Snap a raw viewport to the coarsest level whose snapped bin window
  /// carries at least @p nbins bins: clamp to the leaf domain, take the last
  /// level edge <= view_lo and the first level edge >= view_hi. A viewport
  /// outside the domain yields an empty (lo == hi) plan at level 0; a
  /// viewport too narrow for @p nbins even at the leaf yields nullopt — the
  /// caller's resolution-threshold fallback to the exact path.
  std::optional<SlicePlan> plan_slice(std::size_t axis, double view_lo,
                                      double view_hi, std::size_t nbins) const;
  /// Same snap pinned to one level (2D serving aligns both axes to the
  /// finer of their independent plans).
  SlicePlan plan_slice_at(std::size_t axis, std::size_t level, double view_lo,
                          double view_hi) const;

  /// Edge array of a snapped window (plan.bins() + 1 edges; empty vector
  /// for an empty plan) — the Bins the served histogram reports.
  std::vector<double> slice_edges(std::size_t axis, const SlicePlan& plan) const;

  /// Classify condition @p c against node j at @p level on @p axis. Exact
  /// for every value the node can contain: nodes are half-open [a, b)
  /// except the last node of a level, which is closed at the domain top.
  Cover classify(std::size_t axis, std::size_t level, std::size_t j,
                 const Interval& c) const;

  /// True when every node the serve would touch classifies fully
  /// inside/outside @p cond by the leaf level — i.e. the condition descent
  /// terminates and the served counts are exact. Pure geometry: reads only
  /// edges, never counts, so the svc cache key and the serve itself agree.
  bool servable1d(const SlicePlan& plan, const Interval* cond) const;
  bool servable2d(const SlicePlan& p0, const SlicePlan& p1, const Interval* c0,
                  const Interval* c1) const;

  /// Serve a 1D window: counts[j] = rows landing in level bin plan.lo + j
  /// that satisfy @p cond (nullptr = unconditioned). Requires servable1d.
  std::vector<std::uint64_t> slice_counts1d(const SlicePlan& plan,
                                            const Interval* cond) const;
  /// 2D window at one shared level (p0.level == p1.level), row-major
  /// [i0 * p1.bins() + i1]. Requires servable2d.
  std::vector<std::uint64_t> slice_counts2d(const SlicePlan& p0,
                                            const SlicePlan& p1,
                                            const Interval* c0,
                                            const Interval* c1) const;

  /// Count entries (not bytes) stored for @p level.
  std::uint64_t level_entries(std::size_t l) const {
    return std::uint64_t{1} << (l * ndims());
  }
  std::uint64_t total_count_bytes() const;

 private:
  Pyramid() = default;
  struct LevelIo;  // open-file state for lazy loads

  std::size_t leaf_log2_ = 0;
  std::uint64_t rows_ = 0;
  std::vector<std::vector<double>> edges_;  // per axis, leaf resolution
  // In-memory (build path) levels, index 0 = root. Empty when file-backed.
  std::vector<std::shared_ptr<const std::vector<std::uint64_t>>> built_;
  std::shared_ptr<LevelIo> io_;  // set by open()

  std::uint64_t node_count1d(
      std::size_t level, std::size_t j, const Interval* cond,
      std::vector<std::shared_ptr<const std::vector<std::uint64_t>>>& pins)
      const;
  std::uint64_t node_count2d(
      std::size_t level, std::size_t j0, std::size_t j1, const Interval* c0,
      const Interval* c1,
      std::vector<std::shared_ptr<const std::vector<std::uint64_t>>>& pins)
      const;
  bool node_servable(std::size_t axis, std::size_t level, std::size_t j,
                     const Interval& cond) const;
  const std::vector<std::uint64_t>& level_pinned(
      std::size_t l,
      std::vector<std::shared_ptr<const std::vector<std::uint64_t>>>& pins)
      const;
};

/// `.pyr` file name for a single column / a column pair (in that axis
/// order); the pair probe tries both orientations.
std::string pyramid_filename(const std::string& var);
std::string pyramid_filename(const std::string& x, const std::string& y);

}  // namespace qdv::agg
