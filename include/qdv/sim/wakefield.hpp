// Deterministic laser-wakefield surrogate simulation: a moving simulation
// window streams through a background plasma while trapped particle beams
// ride the wake and accelerate. Reproduces the phenomenology the paper's
// use cases rely on (injection around specific timesteps, beam dephasing,
// momentum thresholds selecting only the beams) without running a PIC code.
//
// Identifier namespace: background particles use their global index
// (< 2^40); beam particles use 2^40 + (beam << 32) + k, so analyses can
// recover beam membership from the id alone.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "io/dataset.hpp"

namespace qdv::sim {

/// One trapped particle beam.
struct BeamSpec {
  std::size_t count = 0;
  std::size_t inject_step = 0;   // first timestep the beam is in the window
  double ramp = 0.0;             // px gained per timestep while accelerating
  std::size_t peak_step = ~std::size_t{0};  // dephasing point (none by default)
  double decline = 0.0;          // px lost per timestep past peak_step
  double xrel0 = 0.5;            // window-relative position at injection
  double xrel_drift = 0.0;       // window-relative drift per timestep
  double px_spread = 0.02;       // relative momentum spread
  double y_sigma0 = 0.3;         // transverse size at injection (fraction of y_max)
  double y_shrink = 0.0;         // focusing rate per timestep
};

struct WakefieldConfig {
  std::size_t num_particles = 100000;  // target background particles per step
  std::size_t num_timesteps = 38;
  std::uint64_t seed = 42;
  int dims = 2;  // 2: z/pz are thermal noise; 3: full transverse structure

  double window_width = 1.0e-3;
  double window_step = 2.5e-4;   // window advance per timestep
  double y_max = 1.0e-4;
  double z_max = 1.0e-4;
  double px_thermal = 5.0e8;     // background momentum scale
  double px_tail_scale = 5.0e9;  // scale of the heavy background tail
  double px_tail_max = 4.0e10;   // hard cap: beams alone exceed this
  double tail_fraction = 0.05;

  std::vector<BeamSpec> beams;

  /// The paper-like 2D run: 38 timesteps, two beams injected at t=14/15;
  /// the first dephases after t=27, `px > 8.872e10` selects both at the end.
  static WakefieldConfig preset_2d(std::size_t particles, std::uint64_t seed = 42);

  /// The 3D analysis run (Figure 10): 16 timesteps, first-bucket beam
  /// injected at t=9 (selected by `px > 4.856e10` at t=12), a slower
  /// second-period beam at t=10.
  static WakefieldConfig preset_3d(std::size_t particles, std::uint64_t seed = 42);

  /// Benchmark dataset: beams present from t=0 so identifier tracking finds
  /// them in every timestep; heavy-tailed background momentum so hit-count
  /// sweeps have usable thresholds.
  static WakefieldConfig preset_bench(std::size_t particles, std::size_t timesteps,
                                      std::uint64_t seed = 42);
};

/// Cap applied by the presets when QDV_MAX_PARTICLES is set — lets test
/// harnesses shrink example datasets without touching example code.
std::size_t apply_particle_cap(std::size_t particles);

/// Generate the dataset (column files + indices + manifest) into @p dir.
/// Returns the total number of bytes written.
std::uint64_t generate_dataset(const WakefieldConfig& config,
                               const std::filesystem::path& dir,
                               const io::IndexConfig& index_config);

}  // namespace qdv::sim
