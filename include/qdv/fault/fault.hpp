// Deterministic fault injection (DESIGN.md §15): a seeded, schedule-driven
// injector the low-level I/O helpers (io::io_util, dist::wire framing, svc
// sockets) consult on every operation. Faults — short reads, EINTR, ENOSPC,
// bit-flips, truncation, connection resets, latency spikes — fire with a
// configured per-site probability drawn from one seeded xorshift stream, so
// a failing chaos run replays exactly from its seed.
//
// Cost when disabled: one relaxed atomic load per I/O call (enabled()); no
// lock, no RNG, no branch beyond the check. The injector is compiled in
// unconditionally so production binaries and chaos runs are the same build.
//
// Configuration: programmatic (configure/reset below) or the QDV_FAULT
// environment variable, parsed once at process start:
//
//   QDV_FAULT=seed:42,spec:file.flip@0.01,spec:wire.reset@0.005
//
// Sites: file (pread/mapped-file paths), wire (dist frame I/O), svc
// (service socket lines). Kinds: short, eintr, enospc, flip, trunc, reset,
// delay. Rates are probabilities in [0, 1].
//
// Thread-safety: all functions are safe from any thread; roll()/draw()
// serialize on an internal mutex (only when enabled).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace qdv::fault {

/// Where an I/O operation happens — each spec targets one site.
enum class Site : unsigned {
  kFile = 0,  // file reads: pread loops, mapped-file heap fallback
  kWire = 1,  // dist frame send/recv
  kSvc = 2,   // service socket line I/O
};

/// What goes wrong.
enum class Kind : unsigned {
  kShortRead = 0,  // return fewer bytes than asked (loop must continue)
  kEintr = 1,      // simulated EINTR before the syscall (loop must retry)
  kEnospc = 2,     // write fails with no-space
  kBitFlip = 3,    // flip one bit in freshly transferred bytes
  kTruncate = 4,   // premature EOF / connection half-close
  kConnReset = 5,  // connection reset (socket sites)
  kLatency = 6,    // injected delay before the operation
};

inline constexpr std::size_t kNumSites = 3;
inline constexpr std::size_t kNumKinds = 7;

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// The one check hot paths pay when injection is off.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Install a schedule from a spec string (grammar above, without the
/// QDV_FAULT= prefix). Replaces any previous schedule and enables
/// injection when at least one rate is nonzero. Returns false (and sets
/// @p error when given) on a malformed spec, leaving the previous schedule
/// in place.
bool configure(const std::string& spec, std::string* error = nullptr);

/// Drop the schedule and disable injection; counters reset to zero.
void reset();

/// Decide whether to inject @p kind at @p site for the current operation
/// (draws from the seeded stream; counts fires). Always false when the
/// schedule has no matching rate.
bool roll(Site site, Kind kind);

/// A raw 64-bit draw from the injector stream — used for fault parameters
/// (which bit to flip, how long to stall) so they replay from the seed too.
std::uint64_t draw();

/// Fires of @p kind at @p site since configure()/reset().
std::uint64_t injected(Site site, Kind kind);
std::uint64_t injected_total();

const char* site_name(Site site);
const char* kind_name(Kind kind);

}  // namespace qdv::fault
