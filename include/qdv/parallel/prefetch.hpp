// Asynchronous read-ahead for multi-timestep traversals (DESIGN.md
// Section 9): requests are submitted to the shared persistent thread pool
// (par::ThreadPool::global()), which loads the columns and indices a future
// timestep will touch so the mapping/page faults of step t+1 overlap with
// the computation of step t. Prefetched residents land in the dataset's
// shared table cache and memory budget — under budget pressure they compete
// in the same LRU as everything else, so a prefetch can never grow the
// footprint past the configured ceiling.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/dataset.hpp"

namespace qdv::par {

/// Pool-backed prefetcher for (timestep, variables) requests.
///
/// Ownership: the shared state (including a Dataset handle by value) is
/// co-owned by every in-flight pool task, so requests can never outlive
/// their data — the destructor marks the state stopped (queued tasks skip
/// their I/O) and returns without joining anything; there is no dedicated
/// worker thread to tear down. Thread-safety: request()/wait_idle() are
/// safe from any thread. Prefetching is advisory — I/O errors are
/// swallowed, and the traversal that follows simply pays the load itself.
/// In-flight requests are bounded (@p max_queue): when the consumer falls
/// behind, further requests are dropped rather than letting read-ahead run
/// unboundedly far ahead and thrash the memory budget.
///
/// Design tradeoff: prefetch I/O shares the compute pool, so in-flight
/// loads occupy workers. The shipped traversal paths only instantiate a
/// Prefetcher for single-host-thread runs (par_ops), where the pool is
/// otherwise idle and the overlap is pure win; wiring one into a
/// multi-threaded batch would displace compute while the I/O blocks.
class Prefetcher {
 public:
  explicit Prefetcher(io::Dataset dataset, std::size_t max_queue = 16);
  ~Prefetcher();
  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Enqueue loading of @p variables at timestep @p t: for "id" the
  /// identifier column and id index, otherwise the raw column and — when
  /// @p value_indices is set — the bitmap-index segment directory (skip it
  /// for traversals that scan columns only: directories are pinned in the
  /// budget, so opening unused ones wastes unevictable bytes). Returns
  /// false when the request was dropped (full queue / out of range).
  bool request(std::size_t t, std::vector<std::string> variables,
               bool value_indices = true);

  /// Block until every enqueued request has been served (used by tests and
  /// ahead-of-loop warming).
  void wait_idle();

  std::uint64_t completed() const;

 private:
  struct State;  // shared with every in-flight pool task
  std::shared_ptr<State> state_;
};

}  // namespace qdv::par
