// Asynchronous read-ahead for multi-timestep traversals (DESIGN.md
// Section 9): a background worker that loads the columns and indices a
// future timestep will touch, so the mapping/page faults of step t+1
// overlap with the computation of step t. Prefetched residents land in the
// dataset's shared table cache and memory budget — under budget pressure
// they compete in the same LRU as everything else, so a prefetch can never
// grow the footprint past the configured ceiling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "io/dataset.hpp"

namespace qdv::par {

/// One background worker prefetching (timestep, variables) requests.
///
/// Ownership: holds the Dataset by value (shared state), so the dataset
/// outlives every in-flight request. Thread-safety: request()/wait_idle()
/// are safe from any thread. Lifetime: the destructor abandons queued
/// requests, finishes the one in flight, and joins the worker.
/// Prefetching is advisory — I/O errors are swallowed, and the traversal
/// that follows simply pays the load itself. The queue is bounded
/// (@p max_queue): when the consumer falls behind, further requests are
/// dropped rather than letting read-ahead run unboundedly far ahead and
/// thrash the memory budget.
class Prefetcher {
 public:
  explicit Prefetcher(io::Dataset dataset, std::size_t max_queue = 16);
  ~Prefetcher();
  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Enqueue loading of @p variables at timestep @p t: for "id" the
  /// identifier column and id index, otherwise the raw column and — when
  /// @p value_indices is set — the bitmap-index segment directory (skip it
  /// for traversals that scan columns only: directories are pinned in the
  /// budget, so opening unused ones wastes unevictable bytes). Returns
  /// false when the request was dropped (full queue / out of range).
  bool request(std::size_t t, std::vector<std::string> variables,
               bool value_indices = true);

  /// Block until every enqueued request has been served (used by tests and
  /// ahead-of-loop warming).
  void wait_idle();

  std::uint64_t completed() const;

 private:
  struct Job {
    std::size_t t = 0;
    std::vector<std::string> variables;
    bool value_indices = true;
  };

  void run();

  io::Dataset dataset_;
  std::size_t max_queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<Job> queue_;
  bool stop_ = false;
  bool busy_ = false;
  std::uint64_t completed_ = 0;
  std::thread worker_;
};

}  // namespace qdv::par
