// Persistent work-stealing thread pool (DESIGN.md Section 10): one set of
// long-lived workers shared by VirtualCluster batches, the Prefetcher, and
// the sharded histogram kernels, so parallel sections stop paying a thread
// spawn/join per run() call.
//
// Each worker owns a deque: submissions from a worker go to its own deque
// (back), idle workers steal from the front of their peers'. parallel_for
// is a fork-join region on top of submit(): the calling thread always
// participates (so nested parallel_for from inside a task can never
// deadlock, even with zero free workers), and while it waits for stragglers
// it helps drain the deques.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace qdv::par {

/// Scheduling class of a submitted task. kHigh tasks are claimed before any
/// kNormal task pool-wide — the query service's request dispatchers ride
/// this so interactive work is not stuck behind bulk parallel_for shards or
/// prefetch I/O already in the deques.
enum class TaskPriority { kNormal, kHigh };

class ThreadPool {
 public:
  /// @p nthreads persistent workers (clamped to >= 1).
  explicit ThreadPool(std::size_t nthreads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (callers of parallel_for add themselves on
  /// top of this).
  std::size_t size() const;

  /// Enqueue a fire-and-forget task. The task must not throw — exceptions
  /// escaping a submitted task terminate the process. Use parallel_for for
  /// exception-propagating batch work.
  void submit(std::function<void()> task);
  void submit(std::function<void()> task, TaskPriority priority);

  /// Run body(0), ..., body(n - 1) with up to @p max_workers concurrent
  /// executors (the calling thread participates and counts toward the
  /// limit, so max_workers == 1 runs everything inline). Blocks until all
  /// indices have executed. Every index runs even when some throw; the
  /// first exception is rethrown once the batch has drained.
  void parallel_for(std::size_t n, std::size_t max_workers,
                    const std::function<void(std::size_t)>& body);

  /// Lazily-constructed process-wide pool, sized by the QDV_THREADS
  /// environment variable (default: hardware concurrency).
  static ThreadPool& global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// RAII scope marking the current thread as "no nested data-parallel
/// fan-out": kern::sharded_tally's auto-gated overload runs single-shard
/// inside it. VirtualCluster wraps every task in one — per-task timings
/// feed the makespan model and must not be contaminated by intra-task
/// multi-threading (DESIGN.md Section 6).
class SerialSection {
 public:
  SerialSection() { ++depth(); }
  ~SerialSection() { --depth(); }
  SerialSection(const SerialSection&) = delete;
  SerialSection& operator=(const SerialSection&) = delete;
  static bool active() { return depth() > 0; }

 private:
  // Out-of-line accessor to a function-local thread_local: keeps the TLS
  // access in one TU (inline cross-TU thread_local members trip clang's
  // UBSan TLS wrapper).
  static int& depth();
};

}  // namespace qdv::par
