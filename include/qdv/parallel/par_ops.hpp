// Parallel partitioned operations for the scalability studies (Figures
// 14-17): per-timestep tasks are executed on host threads and their
// measured durations are composed into modeled makespans for 1..P virtual
// nodes under the paper's static strided file assignment (DESIGN.md
// Section 6).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bitmap/histogram.hpp"
#include "core/query.hpp"
#include "core/selection.hpp"
#include "io/dataset.hpp"

namespace qdv::par {

/// Measured per-task times of one batch, plus the makespan model.
struct ClusterRun {
  std::vector<double> task_seconds;  // task t = timestep t
  double wall_seconds = 0.0;         // host wall time of the batch

  /// Modeled completion time on @p nodes virtual nodes: tasks are assigned
  /// statically (task t -> node t % nodes) and nodes run independently, so
  /// the makespan is the largest per-node sum.
  double makespan(std::size_t nodes) const;

  /// makespan(1) / makespan(nodes).
  double speedup(std::size_t nodes) const;
};

/// Executes task batches on the persistent shared thread pool
/// (par::ThreadPool::global()) and times each task. host_threads caps the
/// batch's concurrency (the calling thread participates); host_threads == 1
/// runs tasks serially on the caller so per-task timings stay free of host
/// contention. No threads are spawned or joined per run() call.
class VirtualCluster {
 public:
  explicit VirtualCluster(std::size_t host_threads);

  /// Run tasks 0..ntasks-1, each timed individually.
  ClusterRun run(std::size_t ntasks,
                 const std::function<void(std::size_t)>& task) const;

  std::size_t host_threads() const { return host_threads_; }

 private:
  std::size_t host_threads_;
};

/// The per-timestep histogram workload of Figures 14/15.
struct HistogramWorkload {
  std::vector<std::pair<std::string, std::string>> pairs;
  std::size_t nbins = 1024;
  QueryPtr condition;  // nullptr = unconditional
  BinningMode binning = BinningMode::kUniform;
  EvalMode mode = EvalMode::kAuto;
};

struct HistogramBatch {
  ClusterRun run;
  std::uint64_t total_records = 0;  // records tallied across all histograms
};

/// Compute the workload's histogram set for every timestep of @p dataset.
/// Opens a fresh table per task (each virtual node pays its own column
/// reads — the paper's cold-I/O setup).
HistogramBatch parallel_histograms(const io::Dataset& dataset,
                                   const HistogramWorkload& workload,
                                   VirtualCluster& cluster);

/// Engine-shared variant: the condition is evaluated through the engine's
/// bitvector cache and the dataset's shared tables, so repeated batches —
/// and any other view driven by the same selection — reuse one evaluation
/// per timestep. Worker threads hit the cache concurrently, and a
/// par::Prefetcher reads the next timestep's touched columns ahead of the
/// workers (DESIGN.md Section 9). Evaluation uses the *engine's* EvalMode,
/// not workload.mode (cached bitvectors are identical under either mode;
/// to time the scan path, construct the Engine with EvalMode::kScan or use
/// the Dataset overload above).
HistogramBatch parallel_histograms(const core::Engine& engine,
                                   const HistogramWorkload& workload,
                                   VirtualCluster& cluster);

struct TrackBatch {
  ClusterRun run;
  std::uint64_t total_hits = 0;  // appearances of the ids across timesteps
};

/// Run the identifier query for @p ids against every timestep (Figures
/// 16/17).
TrackBatch parallel_track(const io::Dataset& dataset,
                          const std::vector<std::uint64_t>& ids, EvalMode mode,
                          VirtualCluster& cluster);

/// Engine-shared variant of parallel_track (cached id-query bitvectors).
TrackBatch parallel_track(const core::Engine& engine,
                          const std::vector<std::uint64_t>& ids,
                          VirtualCluster& cluster);

}  // namespace qdv::par
