// Shard manifest: which worker owns which timestep/row window (DESIGN.md
// Section 13). The coordinator builds one contiguous, near-equal row
// partition per timestep at startup, scatters shard-scoped plans along it,
// and — when a worker dies — reassigns the dead worker's windows onto the
// survivors. Correctness never depends on *how* rows are partitioned, only
// that every timestep's windows tile [0, num_rows) exactly: partial counts
// and histograms then sum to the single-process result bit for bit.
//
// The manifest has a line-based text form (save()/from_text()) so `serve
// --workers` can drop the current ownership next to the socket for
// inspection and tests can round-trip it.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

namespace qdv::dist {

/// One row window [begin, end) at some timestep, owned by worker @p worker
/// (an index into the coordinator's worker table).
struct ShardRange {
  std::size_t worker = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  bool operator==(const ShardRange&) const = default;
};

/// Contiguous near-equal partition of [0, nrows) across @p workers (worker
/// ids, in assignment order). Earlier workers receive the remainder rows;
/// empty windows are omitted, so fewer ranges than workers come back when
/// nrows < workers.size().
std::vector<ShardRange> partition_rows(std::uint64_t nrows,
                                       std::span<const std::size_t> workers);

class ShardManifest {
 public:
  ShardManifest() = default;

  /// Even row split of every timestep across workers 0..num_workers-1.
  static ShardManifest build(const std::vector<std::uint64_t>& rows_per_timestep,
                             std::size_t num_workers);

  std::size_t num_timesteps() const { return ranges_.size(); }
  std::size_t num_workers() const { return num_workers_; }

  /// The windows tiling timestep @p t, ascending by begin.
  const std::vector<ShardRange>& ranges(std::size_t t) const;

  /// Move every window owned by @p dead onto the live workers (alive[w] ==
  /// true, alive[dead] already false), splitting each window across them.
  /// Returns the number of reassigned (new) windows. Throws when no live
  /// worker remains.
  std::size_t reassign(std::size_t dead, const std::vector<bool>& alive);

  std::string to_text() const;
  static ShardManifest from_text(const std::string& text);
  void save(const std::filesystem::path& path) const;

  bool operator==(const ShardManifest&) const = default;

 private:
  std::vector<std::vector<ShardRange>> ranges_;  // [timestep]
  std::size_t num_workers_ = 0;
};

}  // namespace qdv::dist
