// Binary framed wire protocol of the qdv::dist subsystem (DESIGN.md
// Section 13). Coordinator and workers exchange length-prefixed frames over
// AF_UNIX stream sockets; every frame starts with a fixed header carrying a
// magic number and a wire version, so a stale binary talking to a newer
// peer fails with an explicit version-mismatch error instead of decoding
// garbage. Payloads are little-endian scalar sequences (doubles are moved
// bit-exactly through their IEEE-754 image — partial histogram edges must
// compare equal across processes, not approximately equal).
//
// Thread model: a Channel is one blocking connection; it is not internally
// synchronized — callers serialize access (the coordinator guards each
// worker channel with its own mutex). All blocking receives honor an
// optional SO_RCVTIMEO so a stalled peer surfaces as an error instead of
// wedging the caller. POSIX-only, like the svc socket layer.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <string_view>

namespace qdv::dist {

inline constexpr std::uint32_t kWireMagic = 0x51445644u;  // "QDVD"
inline constexpr std::uint16_t kWireVersion = 1;
/// Upper bound on one frame's payload; a header announcing more than this
/// is treated as a corrupt stream.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

enum class MsgType : std::uint16_t {
  kHello = 1,         // coordinator -> worker: version + dataset path
  kHelloAck = 2,      // worker -> coordinator: pid, timesteps, total rows
  kHeartbeat = 3,     // coordinator -> worker liveness probe
  kHeartbeatAck = 4,
  kShardQuery = 5,    // shard-scoped canonical plan (ShardQuery payload)
  kPartialCount = 6,  // u64 count
  kPartialBits = 7,   // serialized windowed BitVector
  kPartialHist1 = 8,  // edges + counts
  kPartialHist2 = 9,  // xedges + yedges + counts
  kError = 10,        // string message (remote evaluation/protocol error)
  kShutdown = 11,     // coordinator -> worker: exit after ack
  kShutdownAck = 12,
};

struct Frame {
  MsgType type = MsgType::kError;
  std::uint32_t seq = 0;  // echoed by responses; matches replies to requests
  std::string payload;
};

/// Peer spoke a different wire version (magic matched, so it *is* a qdv
/// dist peer — just an incompatible one). Carries both versions so callers
/// can produce an actionable message.
class WireVersionError : public std::runtime_error {
 public:
  WireVersionError(std::uint16_t peer, std::uint16_t ours);
  std::uint16_t peer_version;
};

/// Append-only little-endian payload builder.
class WireWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Bit-exact: the IEEE-754 image moves as a u64.
  void f64(double v);
  /// u32 length prefix + raw bytes.
  void str(std::string_view v);

  std::string take() { return std::move(buf_); }
  const std::string& data() const { return buf_; }

 private:
  std::string buf_;
};

/// Sequential reader over one payload; throws std::runtime_error on any
/// read past the end (truncated/corrupt frame).
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();

  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// What a shard sub-request computes; the on-wire subset of
/// svc::RequestKind that merges bit-identically (uniform binning only —
/// adaptive bins depend on the shard's value distribution and stay local).
enum class ShardKind : std::uint8_t {
  kCount = 0,  // popcount of the selection inside the row window
  kBits = 1,   // the windowed selection bitvector itself (backs id queries)
  kHist1 = 2,  // partial conditional 1D histogram (uniform bins)
  kHist2 = 3,  // partial conditional 2D histogram (uniform bins)
};

/// One shard-scoped plan: evaluate @p query at @p timestep, restricted to
/// rows [row_begin, row_end), and return the partial for @p kind.
struct ShardQuery {
  ShardKind kind = ShardKind::kCount;
  std::uint64_t timestep = 0;
  std::uint64_t row_begin = 0;
  std::uint64_t row_end = 0;
  std::uint64_t nxbins = 64;
  std::uint64_t nybins = 64;
  std::string var_x;
  std::string var_y;
  std::string query;  // canonical text; empty = all records

  std::string encode() const;
  static ShardQuery decode(std::string_view payload);
};

/// One blocking framed connection. Move-only; closes on destruction.
class Channel {
 public:
  Channel() = default;
  /// Adopt a connected descriptor (worker side, from accept()).
  explicit Channel(int fd, std::chrono::milliseconds recv_timeout =
                               std::chrono::milliseconds{0});
  /// Connect to a listening worker socket, retrying for up to
  /// @p connect_timeout while the worker is still coming up; applies
  /// @p recv_timeout (0 = block forever) to every subsequent recv().
  static Channel connect(const std::filesystem::path& socket,
                         std::chrono::milliseconds connect_timeout,
                         std::chrono::milliseconds recv_timeout);
  ~Channel();
  Channel(Channel&& other) noexcept;
  Channel& operator=(Channel&& other) noexcept;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  bool open() const { return fd_ >= 0; }
  void close();

  /// Write one frame in full (EINTR-safe partial-write loop). Throws
  /// std::runtime_error once the peer is gone; the channel is closed.
  void send(const Frame& frame);
  /// Read one full frame (EINTR-safe partial-read loop), validating magic
  /// and version. Throws std::runtime_error on timeout/EOF/corruption (the
  /// channel is closed — a desynced stream cannot be reused) and
  /// WireVersionError on a version mismatch (the frame is drained in full
  /// and the channel stays open, so the caller can still send a clear
  /// error reply before hanging up).
  Frame recv();

 private:
  int fd_ = -1;
};

}  // namespace qdv::dist
