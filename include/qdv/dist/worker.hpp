// Worker process of the distributed execution subsystem (DESIGN.md
// Section 13): one process, one full core::Engine over the (shared-
// filesystem) dataset, one AF_UNIX listener speaking the framed dist wire
// protocol. A worker is stateless across requests — every kShardQuery
// carries the canonical plan text plus its row window, so any worker can
// evaluate any shard (which is what makes re-sharding after a death
// trivial); the engine's plan/bitvector caches make repeated plans cheap.
//
// `qdv_tool worker <dataset> --socket <path>` wraps run_worker(); tests and
// `serve --workers N` spawn workers via spawn_worker_process() (fork +
// exec, never bare fork — the parent owns live threads).
#pragma once

#include <sys/types.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace qdv::dist {

/// Framed-protocol server over one engine. Thread model mirrors
/// svc::SocketServer: an accept thread plus one thread per connection;
/// stop() closes everything and joins.
class WorkerServer {
 public:
  /// Opens the dataset and binds @p socket_path (an existing socket file is
  /// removed first); throws std::runtime_error on failure.
  WorkerServer(const std::filesystem::path& dataset_dir,
               std::filesystem::path socket_path);
  ~WorkerServer();  // stop()s if still running
  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  void start();
  void stop();
  /// Block until a kShutdown frame arrives (run_worker's wait).
  void wait_shutdown();

  const std::filesystem::path& socket_path() const;
  std::uint64_t requests_served() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Blocking entry point of `qdv_tool worker`: serve until a kShutdown frame
/// (or a fatal setup error). Returns a process exit code.
int run_worker(const std::filesystem::path& dataset_dir,
               const std::filesystem::path& socket_path);

/// Fork + exec @p exe with @p args (argv[0] = exe) and the parent's
/// environment plus @p env overrides. Returns the child pid; throws on
/// fork/allocation failure. exec happens immediately after fork, so
/// spawning from a process with live threads (the pool, the service) is
/// safe.
pid_t spawn_worker_process(
    const std::string& exe, const std::vector<std::string>& args,
    const std::vector<std::pair<std::string, std::string>>& env = {});

/// Absolute path of the running executable (/proc/self/exe), or @p fallback
/// when the link cannot be read.
std::string self_exe_path(const std::string& fallback = {});

}  // namespace qdv::dist
