// Coordinator of the distributed execution subsystem (DESIGN.md
// Section 13): scatters shard-scoped canonical plans over the framed wire
// protocol to worker processes, gathers the partials, and merges them into
// results bit-identical to single-process core::Engine execution — counts
// sum, uniform-bin histogram counts sum elementwise (identical edges come
// from the shared table domain), and windowed selection bitvectors merge
// through kern::or_many_kway.
//
// Robustness is structural, not bolted on: every worker channel carries an
// SO_RCVTIMEO request timeout, a failed sub-request gets a bounded
// reconnect-and-resend retry, a worker that still fails is declared dead,
// its manifest windows are re-sharded onto the survivors, and the pending
// sub-requests re-scatter — all inside the same execute() call, so the
// caller still receives the exact answer. A background heartbeat thread
// additionally detects deaths between queries.
//
// Thread-safety: execute()/stats()/attach_worker() are safe from any
// thread; per-worker channels are mutex-guarded and coordinator state
// (manifest, liveness, counters) sits behind one state mutex.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bitmap/histogram.hpp"
#include "dist/shard.hpp"
#include "dist/wire.hpp"
#include "io/dataset.hpp"

namespace qdv::dist {

struct DistConfig {
  /// Budget for a worker socket to come up / come back on retry.
  std::chrono::milliseconds connect_timeout{2000};
  /// SO_RCVTIMEO on every scatter reply; a worker that does not answer
  /// within this is treated as failed (then retried, then declared dead).
  std::chrono::milliseconds request_timeout{10000};
  /// Liveness probe period of the background heartbeat thread.
  std::chrono::milliseconds heartbeat_interval{250};
  /// Consecutive missed heartbeats before a worker is declared dead.
  int heartbeat_misses = 3;
  /// Reconnect-and-resend attempts per sub-request before the owning
  /// worker is declared dead and its window re-sharded.
  int max_retries = 1;
  /// Jittered exponential backoff before each reconnect-and-resend: the
  /// delay is min(backoff_base * 2^attempt, backoff_max) scaled by a
  /// seeded jitter factor in [0.5, 1.0), so a momentarily overloaded
  /// worker gets breathing room instead of an instant resend — and
  /// coordinators retrying the same worker do not resend in lockstep.
  std::chrono::milliseconds backoff_base{5};
  std::chrono::milliseconds backoff_max{200};
  /// Seed of the jitter PRNG; a fixed seed makes the delay sequence
  /// reproducible in tests.
  std::uint64_t backoff_seed = 0x9e3779b97f4a7c15ull;
  /// Test seam: when set, called with each backoff delay instead of
  /// sleeping the calling thread.
  std::function<void(std::chrono::milliseconds)> backoff_sleep;
  /// Run the heartbeat thread (tests exercising only the in-query failure
  /// path can turn it off for determinism).
  bool heartbeats = true;
};

/// Per-worker slice of DistStats.
struct WorkerCounters {
  std::string name;  // socket filename
  bool alive = true;
  std::uint64_t requests = 0;  // sub-requests sent (incl. resends)
  std::uint64_t failures = 0;  // send/recv/timeout failures observed
  std::uint64_t retries = 0;   // reconnect-and-resend attempts
};

struct DistStats {
  std::size_t workers = 0;  // ever attached
  std::size_t alive = 0;
  std::uint64_t queries = 0;        // execute() calls
  std::uint64_t scatters = 0;       // shard sub-requests sent
  std::uint64_t gathers = 0;        // partial results merged
  std::uint64_t retries = 0;        // bounded per-worker retries
  std::uint64_t reshards = 0;       // windows reassigned after deaths
  std::uint64_t deaths = 0;         // workers declared dead
  std::uint64_t remote_errors = 0;  // kError replies (query-level failures)
  std::vector<WorkerCounters> per_worker;
};

/// The merged outcome of one scatter/gather. ok == false carries a remote
/// evaluation error (unknown variable, bad window, ...) — the distributed
/// twin of a local evaluation throwing.
struct GatherResult {
  bool ok = true;
  std::string error;

  std::uint64_t count = 0;             // kCount (and total of kBits)
  std::vector<std::uint64_t> ids;      // kBits, mapped through the id column
  Histogram1D hist1d;                  // kHist1
  Histogram2D hist2d;                  // kHist2

  // Worker-reported per-shard compute cost in process CPU seconds (what the
  // shard costs on a dedicated core, immune to workers time-sharing host
  // cores): the max is the makespan-model critical path, the sum the total
  // work (see bench/distributed.cpp).
  std::size_t shards = 0;              // partials merged
  double max_shard_seconds = 0.0;      // critical-path worker CPU time
  double sum_shard_seconds = 0.0;      // total worker CPU time
};

/// Next retry delay: min(@p base * 2^attempt, @p max) scaled by a jitter
/// factor in [0.5, 1.0) drawn from @p state (xorshift64 — seed it once,
/// pass it back for each draw; the same seed replays the same sequence).
/// Never returns less than 1 ms.
std::chrono::milliseconds backoff_delay(int attempt,
                                        std::chrono::milliseconds base,
                                        std::chrono::milliseconds max,
                                        std::uint64_t& state);

/// No live worker remains (or none was ever attached): callers fall back
/// to local execution.
class NoLiveWorkers : public std::runtime_error {
 public:
  explicit NoLiveWorkers(const std::string& what) : std::runtime_error(what) {}
};

class Coordinator {
 public:
  /// @p dataset is the coordinator's own handle to the same on-disk
  /// dataset the workers serve (shared filesystem); it provides row counts
  /// for the shard manifest and the id column for merged id queries.
  explicit Coordinator(io::Dataset dataset, DistConfig config = {});
  /// Stops the heartbeat thread and shuts down (then reaps) every worker
  /// process attached with a pid.
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Connect to a worker socket and hello-handshake (wire version +
  /// dataset identity are verified). @p pid >= 0 registers the process for
  /// shutdown/kill/reap; the returned index is the worker's id in the
  /// shard manifest and stats. Throws std::runtime_error on connect or
  /// handshake failure. The manifest is rebuilt over all live workers on
  /// every attach, so attach every worker before the first execute().
  std::size_t attach_worker(const std::filesystem::path& socket,
                            pid_t pid = -1);

  /// Scatter @p kind over the manifest windows of @p timestep, gather and
  /// merge the partials. Retries, death detection, and re-sharding happen
  /// inside; throws NoLiveWorkers when nobody is left to ask.
  GatherResult execute(ShardKind kind, std::size_t timestep,
                       const std::string& query, const std::string& var_x = {},
                       const std::string& var_y = {}, std::size_t nxbins = 64,
                       std::size_t nybins = 64);

  std::size_t workers() const;
  std::size_t live_workers() const;
  DistStats stats() const;
  ShardManifest manifest_snapshot() const;
  void save_manifest(const std::filesystem::path& path) const;

  /// Graceful worker shutdown: kShutdown over the wire, bounded wait, then
  /// SIGKILL + reap for spawned pids (idempotent; also run by ~Coordinator).
  void shutdown_workers();

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace qdv::dist
