// MemoryBudget: the unified, byte-denominated, cost-aware LRU cache behind
// the out-of-core engine (DESIGN.md Section 9).
//
// One budget instance governs every resident the engine can re-create from
// disk: mapped column pages, decoded per-bin index segments, and evaluated
// query bitvectors. Each resident is charged its byte cost; when the total
// exceeds the configured budget, least-recently-used residents are evicted
// (their optional release hook runs — e.g. dropping a column's mapped
// pages — and their payload reference is dropped).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace qdv::io {

/// What kind of resident a cache entry is; stats are kept per class and the
/// engine's entry-capacity knob applies to the kBitVector class only.
enum class ResidentClass : unsigned {
  kColumn = 0,        // mapped raw column pages
  kIndexSegment = 1,  // decoded per-bin WAH bitmaps (and pinned id indices)
  kBitVector = 2,     // evaluated per-timestep query bitvectors
  kResult = 3,        // completed service results (svc::QueryService cache)
  kPyramid = 4,       // lazily-loaded histogram-pyramid levels (agg::Pyramid)
  kBrush = 5,         // materialized brush bitvectors (core::Brush slots)
};

inline constexpr std::size_t kNumResidentClasses = 6;

/// Snapshot of one class's counters.
struct ResidentClassStats {
  std::uint64_t entries = 0;       // live cached residents
  std::uint64_t bytes = 0;         // bytes currently charged
  std::uint64_t hits = 0;          // get() calls answered from the cache
  std::uint64_t misses = 0;        // get() calls that found nothing
  std::uint64_t evictions = 0;     // residents dropped by the LRU policy
  std::uint64_t loaded_bytes = 0;  // cumulative bytes charged via put()
};

/// Snapshot of the whole budget (see MemoryBudget::stats()).
struct MemoryBudgetStats {
  std::uint64_t budget_bytes = 0;    // configured ceiling (kUnlimited = none)
  std::uint64_t resident_bytes = 0;  // total bytes currently charged
  std::uint64_t entries = 0;
  std::uint64_t evictions = 0;       // all classes
  std::uint64_t loaded_bytes = 0;    // cumulative charged (I/O volume proxy)
  ResidentClassStats cls[kNumResidentClasses];

  const ResidentClassStats& of(ResidentClass c) const {
    return cls[static_cast<unsigned>(c)];
  }
};

/// Thread-safe cost-aware LRU cache with a byte budget.
///
/// Ownership: payloads are held as shared_ptr<const void>; get() returns a
/// pin, so a resident being evicted never invalidates a reader that already
/// holds it. Entries may additionally be `pinned` (never evicted — used for
/// id indices, whose raw pointers are handed out by TimestepTable).
///
/// Thread-safety: every method is guarded by one internal mutex. Release
/// hooks run while that mutex is held, so they must NOT call back into the
/// budget (the io layer's hooks only drop mapped pages via madvise).
///
/// Eviction: put() inserts the entry, then evicts LRU non-pinned entries
/// until resident_bytes <= budget. An entry larger than the whole budget is
/// evicted immediately after insertion — the caller's pin keeps the payload
/// alive for the operation in flight, which is how a column bigger than the
/// budget still completes as a streaming scan.
class MemoryBudget {
 public:
  static constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};
  static constexpr std::size_t kNoEntryCap = ~std::size_t{0};

  explicit MemoryBudget(std::uint64_t budget_bytes = kUnlimited);

  /// Optional per-entry eviction hook (e.g. madvise(DONTNEED) a mapping).
  /// Must not call back into this MemoryBudget.
  using ReleaseHook = std::function<void()>;

  /// Pin the resident under @p key, refreshing its recency; nullptr on miss.
  std::shared_ptr<const void> get(const std::string& key, ResidentClass cls);

  /// Insert (or refresh) a resident and evict to the budget. When @p key is
  /// already present the existing entry is kept (first writer wins, matching
  /// the engine's lock-free evaluation race) and only its recency refreshes.
  void put(const std::string& key, std::shared_ptr<const void> payload,
           std::uint64_t bytes, ResidentClass cls, ReleaseHook on_evict = {},
           bool pinned = false);

  void erase(const std::string& key);
  /// Drop every entry, including pinned ones. Explicit drops (erase/clear)
  /// run the release hooks but are not counted as evictions — the
  /// evictions counter tracks LRU-policy decisions only.
  void clear();
  /// Drop every entry of @p cls (used by Engine::clear_cache()).
  void clear_class(ResidentClass cls);

  void set_budget(std::uint64_t bytes);
  std::uint64_t budget() const;

  /// Maximum live entries of @p cls (LRU-evicts that class beyond the cap);
  /// backs Engine::set_cache_capacity() for the kBitVector class.
  void set_class_entry_cap(ResidentClass cls, std::size_t max_entries);
  std::size_t class_entry_cap(ResidentClass cls) const;

  MemoryBudgetStats stats() const;

 private:
  struct Entry;
  using EntryList = std::list<Entry>;
  // Per-class recency list of non-pinned entries (front = most recently
  // used), so class-cap eviction pops its own tail in O(1) instead of
  // scanning the global LRU.
  using ClassList = std::list<EntryList::iterator>;

  struct Entry {
    std::string key;
    std::shared_ptr<const void> payload;
    std::uint64_t bytes = 0;
    ResidentClass cls = ResidentClass::kColumn;
    ReleaseHook on_evict;
    bool pinned = false;
    ClassList::iterator class_pos;  // valid iff !pinned
  };

  void enforce_locked();
  /// Uncharge + unlink + run the release hook of one entry; counts an
  /// eviction only when @p count_eviction (LRU-policy drops, not explicit
  /// erase/clear).
  void remove_locked(EntryList::iterator it, bool count_eviction);

  mutable std::mutex mutex_;
  std::uint64_t budget_bytes_ = kUnlimited;
  // One cap per class; a missing initializer here would silently become a
  // cap of zero, so keep the list in sync with kNumResidentClasses.
  std::size_t entry_caps_[kNumResidentClasses] = {
      kNoEntryCap, kNoEntryCap, kNoEntryCap,
      kNoEntryCap, kNoEntryCap, kNoEntryCap};
  EntryList lru_;  // front = most recently used
  ClassList class_lru_[kNumResidentClasses];
  std::unordered_map<std::string, EntryList::iterator> by_key_;
  std::uint64_t resident_bytes_ = 0;
  ResidentClassStats cls_[kNumResidentClasses];
};

}  // namespace qdv::io
