// Multi-timestep dataset handle: manifest parsing, per-timestep table cache,
// global (cross-timestep) variable domains, and the dataset-wide memory
// budget every cached table charges its residents to.
//
// A dataset directory holds `qdv_manifest.txt` plus one `tNNNNN/` directory
// per timestep (see io/timestep_table.hpp and DESIGN.md Sections 2 and 9).
//
// Ownership: Dataset is a cheap value-type handle over shared immutable
// state, so it can be held by value in sessions and captured by parallel
// tasks; all copies see the same table cache and memory budget.
// Thread-safety: table() and drop_cache() are guarded by an internal mutex;
// the tables themselves handle their own locking. Lifetime: tables returned
// by table() live until drop_cache() — and spans handed out by a table stay
// valid for that table's lifetime (see TimestepTable).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "io/memory_budget.hpp"
#include "io/timestep_table.hpp"

namespace qdv::io {

/// Index construction parameters used by dataset writers.
struct IndexConfig {
  std::size_t nbins = 1024;       // bins per value index
  bool build_value_indices = true;
  bool build_id_index = true;
  /// Histogram pyramids (agg::Pyramid, DESIGN.md §14): one `<var>.pyr` per
  /// variable (leaf resolution = nbins rounded up to a power of two) plus
  /// one `<a>__<b>.pyr` pair pyramid per listed pair, at pyramid_pair_bins
  /// leaf bins per axis. Zoom/pan requests are served from these.
  bool build_pyramids = true;
  std::size_t pyramid_pair_bins = 256;
  std::vector<std::pair<std::string, std::string>> pyramid_pairs{{"x", "px"}};
};

/// How Dataset::open materializes on-disk data.
struct OpenOptions {
  LoadMode mode = LoadMode::kLazy;
  /// Byte ceiling of the dataset's unified memory budget (columns, index
  /// segments, and — when an Engine adopts the budget — query bitvectors).
  std::uint64_t budget_bytes = MemoryBudget::kUnlimited;
};

/// The defaults Dataset::open(dir) uses: lazy loading, with the
/// QDV_MEMORY_BUDGET environment variable (bytes), when set, seeding
/// budget_bytes. Start from this when layering CLI flags on top.
OpenOptions default_open_options();

class Dataset {
 public:
  /// Open with defaults: lazy mmap-backed loading; the QDV_MEMORY_BUDGET
  /// environment variable (bytes), when set, seeds the memory budget.
  static Dataset open(const std::filesystem::path& dir);
  static Dataset open(const std::filesystem::path& dir,
                      const OpenOptions& options);

  std::size_t num_timesteps() const;
  const std::vector<std::string>& variables() const;
  const std::filesystem::path& path() const;

  /// Cached per-timestep table (shared across callers; see drop_cache()).
  const TimestepTable& table(std::size_t t) const;

  /// A fresh, uncached, unbudgeted table — used by benchmarks and parallel
  /// tasks that need cold-start I/O semantics or private column caches.
  std::shared_ptr<TimestepTable> open_table(
      std::size_t t, LoadMode mode = LoadMode::kLazy) const;

  /// The dataset-wide memory budget all cached tables charge residents to
  /// (never null; unlimited unless configured).
  const std::shared_ptr<MemoryBudget>& memory_budget() const;

  /// Dataset-wide integrity counters: every cached table (and every table
  /// from open_table) reports its checksum verifications, failures, and
  /// quarantine demotions here (never null; surfaced via EngineStats and
  /// the svc stats verb — DESIGN.md §15).
  const std::shared_ptr<IntegrityStats>& integrity_stats() const;

  /// Global [min, max] of a variable across all timesteps.
  std::pair<double, double> global_domain(const std::string& name) const;

  /// Total on-disk footprint (data + indices + metadata).
  std::uint64_t disk_bytes() const;

  /// Release all cached tables (and their column/index caches).
  void drop_cache() const;

  /// Directory of timestep @p t.
  std::filesystem::path step_dir(std::size_t t) const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Name of the per-dataset manifest file.
inline constexpr const char* kManifestName = "qdv_manifest.txt";

/// Directory name of timestep @p t ("t00000", "t00001", ...).
std::string step_dir_name(std::size_t t);

}  // namespace qdv::io
