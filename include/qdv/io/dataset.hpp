// Multi-timestep dataset handle: manifest parsing, per-timestep table cache,
// and global (cross-timestep) variable domains.
//
// A dataset directory holds `qdv_manifest.txt` plus one `tNNNNN/` directory
// per timestep (see io/timestep_table.hpp and DESIGN.md Section 2).
// Dataset is a cheap value-type handle over shared immutable state, so it
// can be held by value in sessions and captured by parallel tasks.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "io/timestep_table.hpp"

namespace qdv::io {

/// Index construction parameters used by dataset writers.
struct IndexConfig {
  std::size_t nbins = 1024;       // bins per value index
  bool build_value_indices = true;
  bool build_id_index = true;
};

class Dataset {
 public:
  static Dataset open(const std::filesystem::path& dir);

  std::size_t num_timesteps() const;
  const std::vector<std::string>& variables() const;
  const std::filesystem::path& path() const;

  /// Cached per-timestep table (shared across callers; see drop_cache()).
  const TimestepTable& table(std::size_t t) const;

  /// A fresh, uncached table — used by benchmarks and parallel tasks that
  /// need cold-start I/O semantics or private column caches.
  std::shared_ptr<TimestepTable> open_table(std::size_t t) const;

  /// Global [min, max] of a variable across all timesteps.
  std::pair<double, double> global_domain(const std::string& name) const;

  /// Total on-disk footprint (data + indices + metadata).
  std::uint64_t disk_bytes() const;

  /// Release all cached tables (and their column/index caches).
  void drop_cache() const;

  /// Directory of timestep @p t.
  std::filesystem::path step_dir(std::size_t t) const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Name of the per-dataset manifest file.
inline constexpr const char* kManifestName = "qdv_manifest.txt";

/// Directory name of timestep @p t ("t00000", "t00001", ...).
std::string step_dir_name(std::size_t t);

}  // namespace qdv::io
