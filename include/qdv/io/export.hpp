// Tabular exports of analysis results (CSV) for downstream plotting.
//
// Stateless free functions: inputs are borrowed for the call, output files
// are created (or truncated) at the given path; errors throw
// std::runtime_error. Safe to call concurrently on distinct paths.
#pragma once

#include <filesystem>

#include "bitmap/histogram.hpp"

namespace qdv::io {

/// Write a 2D histogram as CSV rows: x_lo, x_hi, y_lo, y_hi, count.
void export_csv(const std::filesystem::path& path, const Histogram2D& histogram);

/// Write a 1D histogram as CSV rows: lo, hi, count.
void export_csv(const std::filesystem::path& path, const Histogram1D& histogram);

}  // namespace qdv::io
