// Tabular exports of analysis results (CSV) for downstream plotting.
#pragma once

#include <filesystem>

#include "bitmap/histogram.hpp"

namespace qdv::io {

/// Write a 2D histogram as CSV rows: x_lo, x_hi, y_lo, y_hi, count.
void export_csv(const std::filesystem::path& path, const Histogram2D& histogram);

/// Write a 1D histogram as CSV rows: lo, hi, count.
void export_csv(const std::filesystem::path& path, const Histogram1D& histogram);

}  // namespace qdv::io
