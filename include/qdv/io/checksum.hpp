// On-disk integrity layer (DESIGN.md §15): CRC32C checksums over every
// dataset artifact, recorded in one small text sidecar per directory
// (`checksums.qdv`) so the format itself is untouched and pre-checksum
// datasets keep opening — they just verify as "unverified".
//
// Granularity follows decode granularity, so out-of-core verification cost
// stays O(bytes touched): whole-file entries for columns / meta / manifest
// / eager index loads, plus per-section entries for the lazily-decoded
// regions — each WAH segment of a `.bmi`, each level count array of a
// `.pyr`, and the headers in front of them.
//
// Sidecar format (text, line-oriented):
//   qdv_checksums 1
//   file <name> <size> <crc32c-hex>
//   section <name> <offset> <length> <crc32c-hex>
//
// Thread-safety: ChecksumSet is immutable after load()/building; crc32c()
// is pure; IntegrityStats is all-atomic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace qdv::io {

/// A checksum mismatch (or a checksummed artifact whose size changed): the
/// typed error degradation paths catch. Artifacts with a fallback (bitmap
/// segments, pyramid levels) quarantine and demote; ground-truth artifacts
/// (columns, meta, manifest) surface it to the caller.
class IntegrityError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC32C (Castagnoli) over @p n bytes, software slice-by-8. @p seed chains
/// incremental computations (pass the previous return value).
std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed = 0);

/// Streaming whole-file CRC32C. Throws std::runtime_error when unreadable.
std::uint32_t crc32c_file(const std::filesystem::path& file);

/// Verification/degradation event counters, shared dataset-wide (surfaced
/// through EngineStats and the svc stats verb). Counters count events, not
/// files: a segment decoded twice under budget pressure verifies twice.
struct IntegrityStats {
  std::atomic<std::uint64_t> verified{0};    // checks that passed
  std::atomic<std::uint64_t> failures{0};    // checksum mismatches detected
  std::atomic<std::uint64_t> demotions{0};   // artifacts quarantined
  std::atomic<std::uint64_t> unverified{0};  // decodes with no recorded sum
};

inline constexpr const char* kChecksumSidecarName = "checksums.qdv";

/// The recorded checksums of one directory (dataset root or one timestep).
class ChecksumSet {
 public:
  struct FileSum {
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
  };
  struct Section {
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::uint32_t crc = 0;
  };

  /// Load @p dir's sidecar; nullptr when the directory has none (the
  /// backward-compatible "unverified" case). Throws std::runtime_error on a
  /// malformed sidecar.
  static std::shared_ptr<const ChecksumSet> load_dir(
      const std::filesystem::path& dir);

  /// Whole-file entry of @p name, or nullptr when not recorded.
  const FileSum* file(const std::string& name) const;

  /// Section entry exactly covering [@p offset, @p offset + @p length) of
  /// @p name, or nullptr when not recorded at that granularity.
  const Section* section(const std::string& name, std::uint64_t offset,
                         std::uint64_t length) const;

  /// All sections recorded for @p name (ascending offset), or nullptr.
  const std::vector<Section>* sections(const std::string& name) const;

  /// File names with whole-file entries, sorted (fsck iterates these).
  std::vector<std::string> file_names() const;

  // --- builder side (write_dataset_checksums) ---
  void set_file(const std::string& name, std::uint64_t size,
                std::uint32_t crc);
  void add_section(const std::string& name, std::uint64_t offset,
                   std::uint64_t length, std::uint32_t crc);
  /// Write this set as @p dir's sidecar (atomic replace via rename).
  void save_dir(const std::filesystem::path& dir) const;

 private:
  std::unordered_map<std::string, FileSum> files_;
  std::unordered_map<std::string, std::vector<Section>> sections_;
};

/// Walk the dataset at @p dir and (re)write every checksum sidecar: one at
/// the root covering the manifest, one per timestep directory covering
/// meta / columns / id files whole-file and `.bmi` / `.pyr` both whole-file
/// and per-section. Called by every dataset writer after generation; also
/// the recovery path after an intentional format migration.
void write_dataset_checksums(const std::filesystem::path& dir);

/// One artifact's fsck outcome.
struct FsckEntry {
  enum class Status { kOk, kFailed, kUnverified };
  std::string rel;  // path relative to the dataset root
  Status status = Status::kOk;
  std::string detail;  // which section failed / why unverified
};

struct FsckReport {
  std::vector<FsckEntry> entries;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t unverified = 0;
  std::size_t sections_checked = 0;
  bool damaged() const { return failed > 0; }
};

/// Verify every artifact of the dataset at @p dir against its sidecars:
/// whole-file sums, then per-section sums when a whole file mismatches (to
/// name the damaged region). Files without entries — or whole directories
/// without sidecars — report kUnverified. Never throws on damage; throws
/// std::runtime_error only when @p dir is not a dataset.
FsckReport fsck_dataset(const std::filesystem::path& dir);

}  // namespace qdv::io
