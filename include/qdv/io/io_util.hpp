// EINTR-retrying, short-transfer-looping wrappers around the raw POSIX I/O
// calls (DESIGN.md §15). Every pread/read/write/send/recv in the library
// goes through these — scripts/check_raw_io.sh lint-fails any new raw call
// site — so interrupted syscalls and partial transfers are handled in
// exactly one place, and the qdv::fault injector has one choke point per
// site to perturb.
//
// File helpers throw std::runtime_error on hard errors; socket helpers
// return status (peers legitimately vanish). All are thread-safe (no shared
// state beyond the fault schedule).
#pragma once

#include <cstddef>
#include <cstdint>

#include "fault/fault.hpp"

namespace qdv::io {

/// pread exactly @p n bytes at @p offset, looping over short reads and
/// EINTR. Returns the bytes read — n, or less on end-of-file. Throws
/// std::runtime_error on a read error.
std::size_t pread_full(int fd, void* dst, std::size_t n, std::uint64_t offset);

/// read() the next @p n bytes, same contract as pread_full.
std::size_t read_full(int fd, void* dst, std::size_t n);

/// write exactly @p n bytes; throws std::runtime_error (including on
/// injected ENOSPC) when the file cannot absorb them.
void write_full(int fd, const void* src, std::size_t n);

/// Outcome of a socket transfer.
enum class XferResult {
  kOk,       // all n bytes moved
  kClosed,   // peer closed / connection reset
  kTimeout,  // SO_RCVTIMEO / SO_SNDTIMEO expired
};

/// send() exactly @p n bytes on a socket, looping over short sends and
/// EINTR; @p site tags the transfer for fault injection.
XferResult send_full(int fd, const void* src, std::size_t n, fault::Site site);

/// recv() exactly @p n bytes, same contract.
XferResult recv_full(int fd, void* dst, std::size_t n, fault::Site site);

/// One recv() of at most @p cap bytes — line-oriented protocols read in
/// chunks and scan for the delimiter themselves. On kOk, @p got holds the
/// chunk size (> 0); kClosed covers orderly shutdown and hard errors.
XferResult recv_some(int fd, void* dst, std::size_t cap, fault::Site site,
                     std::size_t& got);

}  // namespace qdv::io
