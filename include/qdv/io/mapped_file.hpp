// Memory-mapped file access: the storage primitive of the out-of-core io
// layer (DESIGN.md Section 9).
//
// MappedFile is a read-only, page-aligned mapping of one on-disk file.
// ColumnHandle<T> is a typed, lazily-mapped view of one raw column file
// with an explicit load/release lifecycle: load() establishes the mapping,
// release() drops the resident pages while keeping every previously handed
// out span valid (the address range stays mapped; the next touch refaults
// the pages from the file).
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace qdv::io {

/// Read-only, page-aligned memory mapping of one file.
///
/// Ownership: created through the shared_ptr factory only; the mapping (or
/// the heap fallback buffer) lives exactly as long as the last shared_ptr.
/// Thread-safety: the mapped bytes are immutable, so concurrent reads need
/// no synchronization; the residency hints (advise_*, release_pages) are
/// safe to call concurrently with readers — release_pages() only drops
/// physical pages, never the mapping, so spans into bytes() stay valid for
/// the lifetime of the object.
///
/// Uses POSIX mmap; falls back to reading the whole file into a heap buffer
/// when mmap is unavailable or QDV_NO_MMAP is set (the fallback cannot drop
/// residency, so release_pages() is a no-op there).
class MappedFile {
 public:
  /// Map @p file read-only. Throws std::runtime_error when the file cannot
  /// be opened or mapped.
  static std::shared_ptr<MappedFile> map(const std::filesystem::path& file);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// The mapped file image. Valid for the lifetime of this object,
  /// including across release_pages() calls.
  std::span<const std::byte> bytes() const { return {data_, size_}; }
  std::size_t size() const { return size_; }
  const std::filesystem::path& path() const { return path_; }

  /// True when backed by a real mmap (false: heap fallback).
  bool backed_by_mmap() const { return mmapped_; }

  /// Residency hints (no-ops for the heap fallback).
  void advise_sequential() const;  // expect a front-to-back streaming scan
  void advise_willneed() const;    // asynchronous read-ahead of all pages
  /// Drop the resident pages. The mapping itself stays valid; the next
  /// access refaults the data from the file.
  void release_pages() const;

 private:
  MappedFile() = default;

  std::filesystem::path path_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mmapped_ = false;
  std::vector<std::byte> fallback_;  // heap copy when !mmapped_
};

/// Typed, lazily-mapped view of one raw little-endian column file.
///
/// Lifecycle: a handle starts unloaded (no file I/O); load() maps the file
/// and returns the values; release() drops resident pages but keeps the
/// mapping, so spans handed out earlier remain valid. The mapping is freed
/// when the handle (and every pin taken via mapping()) is destroyed.
/// Thread-safety: ColumnHandle itself is NOT synchronized — callers
/// (TimestepTable) serialize load()/release(); the returned spans are
/// immutable and safe to read concurrently.
template <typename T>
class ColumnHandle {
 public:
  ColumnHandle() = default;
  ColumnHandle(std::filesystem::path file, std::uint64_t rows)
      : path_(std::move(file)), rows_(rows) {}

  /// Map the column file (no-op when already loaded) and return the values.
  /// Throws std::runtime_error when the file is missing or shorter than
  /// rows() * sizeof(T).
  std::span<const T> load() {
    if (!map_) {
      auto mapped = MappedFile::map(path_);
      if (mapped->size() < rows_ * sizeof(T))
        throw std::runtime_error("truncated column file " + path_.string());
      map_ = std::move(mapped);
    }
    return values();
  }

  /// The mapped values; empty before the first load().
  std::span<const T> values() const {
    if (!map_) return {};
    return {reinterpret_cast<const T*>(map_->bytes().data()),
            static_cast<std::size_t>(rows_)};
  }

  bool loaded() const { return map_ != nullptr; }

  /// Drop the resident pages (mapping and spans stay valid; the next touch
  /// refaults from the file). No-op when not loaded.
  void release() {
    if (map_) map_->release_pages();
  }

  /// Bytes of column payload governed by this handle.
  std::uint64_t bytes() const { return rows_ * sizeof(T); }
  std::uint64_t rows() const { return rows_; }
  const std::filesystem::path& file() const { return path_; }

  /// The underlying mapping (nullptr before load()); pin it to keep the
  /// bytes alive independently of this handle.
  const std::shared_ptr<MappedFile>& mapping() const { return map_; }

 private:
  std::filesystem::path path_;
  std::uint64_t rows_ = 0;
  std::shared_ptr<MappedFile> map_;
};

}  // namespace qdv::io
