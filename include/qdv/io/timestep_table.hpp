// One timestep of a dataset: lazily loaded column files plus their bitmap
// and identifier indices, with index-backed or scan query evaluation.
//
// On-disk layout (DESIGN.md Section 2): the timestep directory holds
// `meta.txt` (row count + per-variable domains), raw little-endian column
// files `<var>.f64` / `id.u64`, and serialized indices `<var>.bmi` /
// `id.idi`.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bitmap/bitmap_index.hpp"
#include "bitmap/histogram.hpp"
#include "core/query.hpp"

namespace qdv::io {

class TimestepTable {
 public:
  /// Open the timestep stored in @p dir (reads meta.txt eagerly, everything
  /// else lazily).
  explicit TimestepTable(std::filesystem::path dir, std::size_t step = 0);

  std::uint64_t num_rows() const { return rows_; }
  std::size_t step() const { return step_; }
  const std::vector<std::string>& variables() const { return variables_; }

  /// Raw column values (loaded from disk and cached on first use).
  std::span<const double> column(const std::string& name) const;

  /// The identifier column (unsigned 64-bit).
  std::span<const std::uint64_t> id_column(const std::string& name) const;

  /// Bitmap index of @p name, or nullptr when none exists on disk.
  const BitmapIndex* index(const std::string& name) const;

  /// Identifier index of @p name, or nullptr when none exists on disk.
  const IdIndex* id_index(const std::string& name) const;

  /// True when at least one serialized index accompanies the data files.
  bool has_indices() const;

  /// Per-timestep [min, max] of a variable (from meta.txt).
  std::pair<double, double> domain(const std::string& name) const;

  /// Histogram computation handle bound to this table.
  HistogramEngine engine(EvalMode mode = EvalMode::kAuto) const {
    return HistogramEngine(*this, mode);
  }

  /// Evaluate a query against this timestep.
  BitVector query(const Query& q, EvalMode mode = EvalMode::kAuto) const;
  BitVector query(const std::string& text, EvalMode mode = EvalMode::kAuto) const;

  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path dir_;
  std::size_t step_ = 0;
  std::uint64_t rows_ = 0;
  std::vector<std::string> variables_;
  std::unordered_map<std::string, std::pair<double, double>> domains_;

  mutable std::mutex mutex_;
  mutable std::unordered_map<std::string, std::vector<double>> columns_;
  mutable std::unordered_map<std::string, std::vector<std::uint64_t>> id_columns_;
  mutable std::unordered_map<std::string, std::optional<BitmapIndex>> indices_;
  mutable std::unordered_map<std::string, std::optional<IdIndex>> id_indices_;
};

}  // namespace qdv::io

namespace qdv {

/// Evaluate @p query against @p table (indices when available under kAuto).
BitVector evaluate(const Query& query, const io::TimestepTable& table,
                   EvalMode mode = EvalMode::kAuto);

}  // namespace qdv
