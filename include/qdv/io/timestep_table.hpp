// One timestep of a dataset: memory-mapped, lazily-loaded column files plus
// their bitmap and identifier indices, with index-backed or scan query
// evaluation.
//
// On-disk layout (DESIGN.md Section 2): the timestep directory holds
// `meta.txt` (row count + per-variable domains), raw little-endian column
// files `<var>.f64` / `id.u64`, and serialized indices `<var>.bmi` /
// `id.idi`.
//
// Out-of-core behavior (DESIGN.md Section 9): under LoadMode::kLazy the
// table mmaps column files on first touch and opens `.bmi` indices as
// segment directories (SegmentedBitmapIndex), decoding per-bin WAH bitmaps
// only when a query's bin coverage needs them. All residents are charged to
// the table's MemoryBudget (when one is attached); budget eviction drops
// mapped pages / decoded segments but never invalidates a span already
// handed out — mappings stay address-valid for the table's lifetime.
//
// Ownership: a TimestepTable owns its mappings and decoded indices; spans
// returned by column()/id_column() and pointers returned by the index
// accessors are valid for the lifetime of the table.
// Thread-safety: all lazy-loading accessors are guarded by one internal
// mutex; query evaluation itself runs outside that lock, so concurrent
// queries (and concurrent Selections sharing one mapped file) are safe.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bitmap/bitmap_index.hpp"
#include "bitmap/histogram.hpp"
#include "bitmap/index_segments.hpp"
#include "core/query.hpp"
#include "io/checksum.hpp"
#include "io/mapped_file.hpp"
#include "io/memory_budget.hpp"

namespace qdv::agg {
class Pyramid;
}

namespace qdv::io {

/// How a table materializes on-disk data.
enum class LoadMode {
  kLazy,   // mmap columns, segment-wise index decoding (the default)
  kEager,  // whole-file heap reads, fully deserialized indices (seed behavior)
};

class TimestepTable {
 public:
  /// Open the timestep stored in @p dir (reads meta.txt eagerly, everything
  /// else lazily). @p budget, when given, is charged for every resident the
  /// table loads and may evict them; pass nullptr for an unbudgeted table.
  /// @p integrity, when given, receives this table's verification /
  /// degradation counters (Dataset shares one across all its tables);
  /// nullptr allocates a private one. Checksums come from the directory's
  /// `checksums.qdv` sidecar (io/checksum.hpp) — absent sidecar means every
  /// decode counts as unverified but everything still opens.
  explicit TimestepTable(std::filesystem::path dir, std::size_t step = 0,
                         LoadMode mode = LoadMode::kLazy,
                         std::shared_ptr<MemoryBudget> budget = nullptr,
                         std::shared_ptr<IntegrityStats> integrity = nullptr);

  std::uint64_t num_rows() const { return rows_; }
  std::size_t step() const { return step_; }
  const std::vector<std::string>& variables() const { return variables_; }
  LoadMode load_mode() const { return mode_; }
  const std::shared_ptr<MemoryBudget>& memory_budget() const { return budget_; }

  /// Raw column values, mapped (kLazy) or read (kEager) on first use. The
  /// span stays valid for the table's lifetime, across budget evictions.
  std::span<const double> column(const std::string& name) const;

  /// The identifier column (unsigned 64-bit); same lifetime rules.
  std::span<const std::uint64_t> id_column(const std::string& name) const;

  /// Read-ahead: load @p name's column and ask the kernel to fault its
  /// pages in asynchronously (madvise(WILLNEED); under kEager the load
  /// itself reads the file). Used by par::Prefetcher.
  void prefetch_column(const std::string& name) const;
  void prefetch_id_column(const std::string& name) const;

  /// Segment directory of @p name's bitmap index (kLazy mode), or nullptr
  /// when none exists on disk. Pointer valid for the table's lifetime.
  const SegmentedBitmapIndex* value_index(const std::string& name) const;

  /// Fully deserialized bitmap index of @p name (the kEager path; loads the
  /// whole .bmi on demand in either mode), or nullptr when none exists.
  const BitmapIndex* index(const std::string& name) const;

  /// Identifier index of @p name, or nullptr when none exists on disk.
  /// Always fully resident (binary search needs it whole); charged to the
  /// budget as pinned. Pointer valid for the table's lifetime.
  const IdIndex* id_index(const std::string& name) const;

  /// On-disk existence checks (no loading) — what the planner probes.
  bool has_value_index(const std::string& name) const;
  bool has_id_index(const std::string& name) const;

  /// True once @p name's bitmap index was quarantined after a checksum
  /// mismatch or structural corruption: its predicates demote to the scan
  /// path (DESIGN.md §15) without re-verifying per query. The planner
  /// consults this so fresh plans show the demotion in explain().
  bool index_quarantined(const std::string& name) const;
  /// Mark @p name's bitmap index unusable (idempotent; the first call
  /// counts one integrity demotion). Called by the evaluation layer when an
  /// index artifact fails verification mid-query.
  void quarantine_index(const std::string& name) const;

  /// The verification/degradation counters this table reports into.
  const std::shared_ptr<IntegrityStats>& integrity_stats() const {
    return integrity_;
  }

  /// Histogram pyramid of one column (`<name>.pyr`) or of a column pair
  /// (`<x>__<y>.pyr`, exactly that axis order — callers try both
  /// orientations). nullptr when none exists on disk. Levels load lazily
  /// through the budget under ResidentClass::kPyramid; the handle itself
  /// (header + leaf edges) stays resident for the table's lifetime.
  std::shared_ptr<const agg::Pyramid> pyramid1d(const std::string& name) const;
  std::shared_ptr<const agg::Pyramid> pyramid2d(const std::string& x,
                                                const std::string& y) const;

  /// On-disk existence checks (no loading) — what the planner probes.
  bool has_pyramid(const std::string& name) const;
  bool has_pyramid(const std::string& x, const std::string& y) const;

  /// True when at least one serialized index accompanies the data files.
  bool has_indices() const;

  /// Budget-cached decoded-segment supplier for @p idx (variable @p name);
  /// the lazy query path hands this to SegmentedBitmapIndex::evaluate_*.
  SegmentedBitmapIndex::SegmentFetch segment_fetch(
      const std::string& name, const SegmentedBitmapIndex& idx) const;

  /// Per-timestep [min, max] of a variable (from meta.txt).
  std::pair<double, double> domain(const std::string& name) const;

  /// Histogram computation handle bound to this table.
  HistogramEngine engine(EvalMode mode = EvalMode::kAuto) const {
    return HistogramEngine(*this, mode);
  }

  /// Evaluate a query against this timestep.
  BitVector query(const Query& q, EvalMode mode = EvalMode::kAuto) const;
  BitVector query(const std::string& text, EvalMode mode = EvalMode::kAuto) const;

  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path dir_;
  std::size_t step_ = 0;
  std::uint64_t rows_ = 0;
  LoadMode mode_ = LoadMode::kLazy;
  std::shared_ptr<MemoryBudget> budget_;
  std::string budget_prefix_;  // per-directory key namespace in the budget
  std::vector<std::string> variables_;
  std::unordered_map<std::string, std::pair<double, double>> domains_;
  std::shared_ptr<const ChecksumSet> sums_;  // sidecar; nullptr = unverified
  std::shared_ptr<IntegrityStats> integrity_;  // never null

  // Lazy-loading state, guarded by mutex_. Handles are stored in node-based
  // maps, so references stay stable while the maps grow.
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::string, ColumnHandle<double>> column_handles_;
  mutable std::unordered_map<std::string, ColumnHandle<std::uint64_t>> id_handles_;
  mutable std::unordered_map<std::string, std::optional<SegmentedBitmapIndex>>
      seg_indices_;
  mutable std::unordered_map<std::string, std::vector<double>> columns_;  // kEager
  mutable std::unordered_map<std::string, std::vector<std::uint64_t>>
      id_columns_;  // kEager
  mutable std::unordered_map<std::string, std::optional<BitmapIndex>> indices_;
  mutable std::unordered_map<std::string, std::optional<IdIndex>> id_indices_;
  // Keyed by .pyr file stem ("x", "x__px"); nullptr = probed, absent.
  mutable std::unordered_map<std::string, std::shared_ptr<const agg::Pyramid>>
      pyramids_;
  // Quarantined artifact file names ("a.bmi", "id.idi") and column files
  // already verified once; both guarded by mutex_.
  mutable std::unordered_set<std::string> quarantined_;
  mutable std::unordered_set<std::string> verified_files_;

  std::shared_ptr<const agg::Pyramid> open_pyramid(
      const std::string& stem) const;

  // Whole-file verification of a column/meta artifact, at most once per
  // file (mutex_ held). Throws IntegrityError on mismatch — columns are
  // ground truth, there is nothing to demote to.
  void verify_file_locked(const std::string& filename, const void* data,
                          std::size_t nbytes) const;
  // Same contract, streaming from disk (the eager heap-read paths).
  void verify_disk_locked(const std::string& filename) const;

  template <typename T>
  std::span<const T> lazy_column(
      std::unordered_map<std::string, ColumnHandle<T>>& handles,
      const std::string& name, const char* extension) const;
};

}  // namespace qdv::io

namespace qdv {

/// Evaluate @p query against @p table (indices when available under kAuto).
BitVector evaluate(const Query& query, const io::TimestepTable& table,
                   EvalMode mode = EvalMode::kAuto);

}  // namespace qdv
