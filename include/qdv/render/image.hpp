// Minimal additive-blending RGB raster with PPM output — enough to
// reproduce the paper's figures without a graphics dependency.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

namespace qdv::render {

struct Color {
  float r = 0.0f;
  float g = 0.0f;
  float b = 0.0f;
};

namespace colors {
inline constexpr Color kBlack{0.0f, 0.0f, 0.0f};
inline constexpr Color kWhite{1.0f, 1.0f, 1.0f};
inline constexpr Color kGray{0.55f, 0.55f, 0.55f};
inline constexpr Color kRed{0.94f, 0.22f, 0.18f};
inline constexpr Color kGreen{0.16f, 0.85f, 0.30f};
inline constexpr Color kBlue{0.25f, 0.45f, 0.95f};
inline constexpr Color kYellow{0.95f, 0.85f, 0.20f};
inline constexpr Color kOrange{0.95f, 0.55f, 0.15f};
inline constexpr Color kCyan{0.20f, 0.80f, 0.85f};
inline constexpr Color kMagenta{0.85f, 0.30f, 0.85f};
}  // namespace colors

class Image {
 public:
  Image(std::size_t width, std::size_t height, Color background = colors::kBlack);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }

  /// Additive blend of @p color scaled by @p alpha (clamped at write time).
  void add(std::ptrdiff_t x, std::ptrdiff_t y, const Color& color, float alpha);

  /// Opaque write.
  void set(std::ptrdiff_t x, std::ptrdiff_t y, const Color& color);

  /// Anti-aliasing-free line segment with additive blending.
  void draw_line(double x0, double y0, double x1, double y1, const Color& color,
                 float alpha);

  /// Binary PPM (P6) output; parent directories are created when missing.
  void write_ppm(const std::filesystem::path& path) const;

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<float> rgb_;  // 3 floats per pixel, row-major
};

/// Perceptual-ish blue->red pseudocolor map over t in [0, 1], used by the
/// physical-space scatter views.
Color pseudocolor(double t);

/// Distinct palette color for categorical series (temporal plots).
Color palette_color(std::size_t i);

}  // namespace qdv::render
