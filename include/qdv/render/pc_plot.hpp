// Histogram-based focus+context parallel coordinates (Section III of the
// paper): aggregated 2D-histogram quads between adjacent axes, traditional
// per-record polylines, and the outlier-preserving hybrid of both.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "bitmap/histogram.hpp"
#include "render/image.hpp"

namespace qdv::render {

/// One vertical axis of the plot with its value domain.
struct PcAxis {
  std::string name;
  double lo = 0.0;
  double hi = 1.0;
};

/// Style of one rendering layer.
struct PcStyle {
  Color color = colors::kWhite;
  float max_alpha = 1.0f;  // intensity of the densest bin / each polyline
  double gamma = 1.0;      // density response: intensity = (count/max)^gamma
};

/// Canvas geometry.
struct PcLayout {
  std::size_t width = 960;
  std::size_t height = 540;
  std::size_t margin = 36;
};

class ParallelCoordinatesPlot {
 public:
  explicit ParallelCoordinatesPlot(std::vector<PcAxis> axes, PcLayout layout = {});

  /// Axis lines and plot frame.
  void draw_frame();

  /// Aggregated rendering: hists[i] is the 2D histogram of axis pair
  /// (i, i+1); each non-empty bin renders as a quad connecting its value
  /// ranges on the two axes.
  void draw_histogram_layer(const std::vector<Histogram2D>& hists,
                            const PcStyle& style);

  /// Traditional per-record polylines; columns[i] holds the values of axis i.
  void draw_polyline_layer(const std::vector<std::span<const double>>& columns,
                           const PcStyle& style);

  /// Hybrid rendering (Section III-A3): dense bins as quads, records in bins
  /// below @p outlier_fraction of the pair's peak density as polylines.
  void draw_hybrid_layer(const std::vector<Histogram2D>& hists,
                         const std::vector<std::span<const double>>& columns,
                         const PcStyle& style, double outlier_fraction);

  const Image& image() const { return image_; }
  Image& image() { return image_; }

 private:
  double axis_x(std::size_t axis) const;
  double value_y(std::size_t axis, double value) const;

  std::vector<PcAxis> axes_;
  PcLayout layout_;
  Image image_;
};

}  // namespace qdv::render
