// Query planner: the middle stage of the parse -> canonicalize -> plan ->
// execute -> cache pipeline (DESIGN.md Section 8).
//
// canonicalize() rewrites an AST into a normal form whose to_string() is a
// stable semantic cache key: NOT is pushed down to the leaves via De Morgan,
// nested And/Or chains are flattened, conjoined comparisons on one variable
// are fused into a single IntervalQuery (one index probe instead of one per
// comparison), duplicate operands are dropped, and operand lists are sorted.
// plan_query() then records, per leaf predicate, whether the engine will
// answer it from a bitmap/id index or a sequential scan, and renders the
// whole decision as a human-readable explain() string.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/query.hpp"

namespace qdv::io {
class TimestepTable;
}  // namespace qdv::io

namespace qdv::core {

/// Normal form of @p query (see file comment). nullptr stays nullptr (the
/// match-everything selection). Two semantically equal conjunction trees —
/// up to operand order, associativity, double negation, and comparison
/// fusion — canonicalize to ASTs with identical to_string().
///
/// The rewrite assumes column values are totally ordered: flipping a
/// comparison under NOT (`!(x < v)` -> `x >= v`) is an identity only for
/// non-NaN data. The on-disk format never stores NaN (the generator and
/// index builders reject it from binning), so this holds for qdv datasets.
QueryPtr canonicalize(const QueryPtr& query);

/// The cache key of a canonical query: its to_string(), which is stable,
/// deterministic, and content-complete (IdIn sets are digest-tagged).
std::string cache_key(const Query& canonical_query);

/// How one leaf predicate of a plan will be answered.
enum class AccessPath {
  kBitmapIndex,  // two-step bitmap-index probe (interval evaluation)
  kIdIndex,      // sorted id-index lookup
  kScan,         // sequential scan of the raw column
  kConstant,     // contradiction folded at plan time (empty interval)
};

struct PredicateStep {
  std::string predicate;  // canonical text of the leaf
  std::string variable;
  AccessPath access = AccessPath::kScan;
  bool fused = false;     // true when the leaf is a fused IntervalQuery
};

/// The executable shape of one canonical query. Immutable after
/// plan_query() builds it — safe to read concurrently — and shared
/// (shared_ptr<const ExecutionPlan>) by every Selection handle built from
/// the same query text; it owns its canonical AST and outlives the Engine
/// that planned it.
class ExecutionPlan {
 public:
  ExecutionPlan() = default;

  const QueryPtr& canonical() const { return canonical_; }
  const std::string& key() const { return key_; }
  const std::vector<PredicateStep>& steps() const { return steps_; }

  /// Distinct variables the plan touches (leaf order, deduplicated) — what
  /// an executor must load and a prefetcher should read ahead.
  std::vector<std::string> variables() const;

  /// Multi-line report: canonical query, cache key, and the chosen access
  /// path of every leaf predicate.
  std::string explain() const;

 private:
  friend ExecutionPlan plan_query(QueryPtr query, const io::TimestepTable* probe);

  QueryPtr canonical_;   // nullptr = select everything
  std::string key_;
  std::vector<PredicateStep> steps_;
};

/// Canonicalize @p query and decide the access path of each leaf. @p probe,
/// when given, is consulted for actual index availability (typically
/// timestep 0 of the dataset; index layout is uniform across timesteps);
/// without a probe the planner assumes indices exist.
ExecutionPlan plan_query(QueryPtr query, const io::TimestepTable* probe = nullptr);

}  // namespace qdv::core
