// Query planner: the middle stage of the parse -> canonicalize -> plan ->
// execute -> cache pipeline (DESIGN.md Section 8).
//
// canonicalize() rewrites an AST into a normal form whose to_string() is a
// stable semantic cache key: NOT is pushed down to the leaves via De Morgan,
// nested And/Or chains are flattened, conjoined comparisons on one variable
// are fused into a single IntervalQuery (one index probe instead of one per
// comparison), duplicate operands are dropped, and operand lists are sorted.
// plan_query() then records, per leaf predicate, whether the engine will
// answer it from a bitmap/id index or a sequential scan, and renders the
// whole decision as a human-readable explain() string.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bitmap/interval.hpp"
#include "core/query.hpp"

namespace qdv::io {
class TimestepTable;
}  // namespace qdv::io

namespace qdv::core {

/// Normal form of @p query (see file comment). nullptr stays nullptr (the
/// match-everything selection). Two semantically equal conjunction trees —
/// up to operand order, associativity, double negation, and comparison
/// fusion — canonicalize to ASTs with identical to_string().
///
/// The rewrite assumes column values are totally ordered: flipping a
/// comparison under NOT (`!(x < v)` -> `x >= v`) is an identity only for
/// non-NaN data. The on-disk format never stores NaN (the generator and
/// index builders reject it from binning), so this holds for qdv datasets.
QueryPtr canonicalize(const QueryPtr& query);

/// The cache key of a canonical query: its to_string(), which is stable,
/// deterministic, and content-complete (IdIn sets are digest-tagged).
std::string cache_key(const Query& canonical_query);

/// How one leaf predicate of a plan will be answered.
enum class AccessPath {
  kBitmapIndex,  // two-step bitmap-index probe (interval evaluation)
  kIdIndex,      // sorted id-index lookup
  kScan,         // sequential scan of the raw column
  kConstant,     // contradiction folded at plan time (empty interval)
  kPyramid,      // histogram-pyramid node classification (zoom routing only)
};

struct PredicateStep {
  std::string predicate;  // canonical text of the leaf
  std::string variable;
  AccessPath access = AccessPath::kScan;
  bool fused = false;     // true when the leaf is a fused IntervalQuery
  // True when the index exists on disk but was quarantined after failing a
  // checksum (DESIGN.md §15): the step planned kScan as a demotion, not
  // because no index was built. Plans cached before the quarantine keep
  // their index steps — the evaluation layer demotes those at run time.
  bool demoted = false;
};

/// The executable shape of one canonical query. Immutable after
/// plan_query() builds it — safe to read concurrently — and shared
/// (shared_ptr<const ExecutionPlan>) by every Selection handle built from
/// the same query text; it owns its canonical AST and outlives the Engine
/// that planned it.
class ExecutionPlan {
 public:
  ExecutionPlan() = default;

  const QueryPtr& canonical() const { return canonical_; }
  const std::string& key() const { return key_; }
  const std::vector<PredicateStep>& steps() const { return steps_; }

  /// Distinct variables the plan touches (leaf order, deduplicated) — what
  /// an executor must load and a prefetcher should read ahead.
  std::vector<std::string> variables() const;

  /// When the canonical query is a pure conjunction of single-variable
  /// range leaves (Compare/Interval under And — the pyramid-servable
  /// shape), the per-variable intersected condition intervals; nullopt for
  /// anything with Or/Not/IdIn. The match-everything plan is an empty
  /// vector. Decided once at plan time: Selection::zoom_histogram* routes
  /// to the pyramid tier only when this is set.
  const std::optional<std::vector<std::pair<std::string, Interval>>>&
  marginal_intervals() const {
    return marginal_;
  }

  /// Zoom routing per marginal condition variable: kPyramid when the probe
  /// found a `.pyr` next to the column (assumed present without a probe),
  /// kScan otherwise. Empty when marginal_intervals() is nullopt or empty.
  const std::vector<PredicateStep>& zoom_steps() const { return zoom_steps_; }

  /// Multi-line report: canonical query, cache key, the chosen access path
  /// of every leaf predicate, and the zoom-tier routing decision.
  std::string explain() const;

 private:
  friend ExecutionPlan plan_query(QueryPtr query, const io::TimestepTable* probe);

  QueryPtr canonical_;   // nullptr = select everything
  std::string key_;
  std::vector<PredicateStep> steps_;
  std::optional<std::vector<std::pair<std::string, Interval>>> marginal_;
  std::vector<PredicateStep> zoom_steps_;
};

/// Canonicalize @p query and decide the access path of each leaf. @p probe,
/// when given, is consulted for actual index availability (typically
/// timestep 0 of the dataset; index layout is uniform across timesteps);
/// without a probe the planner assumes indices exist.
ExecutionPlan plan_query(QueryPtr query, const io::TimestepTable* probe = nullptr);

}  // namespace qdv::core
