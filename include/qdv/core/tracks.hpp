// Temporal particle tracking: per-timestep values of a fixed identifier set,
// aligned to the selection order (absent particles carry NaN).
//
// ParticleTracks is a self-contained value type (owns all of its data, no
// references into the dataset); filled once by the session during
// construction, then safe to read from any thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qdv::core {

class ParticleTracks {
 public:
  ParticleTracks(std::vector<std::uint64_t> ids, std::vector<std::size_t> timesteps,
                 std::vector<std::string> variables);

  const std::vector<std::uint64_t>& ids() const { return ids_; }
  const std::vector<std::size_t>& timesteps() const { return timesteps_; }
  const std::vector<std::string>& variables() const { return variables_; }

  /// Number of tracked particles present at timestep index @p ti.
  std::size_t count_present(std::size_t ti) const;

  /// Value of @p variable for the @p k-th tracked particle at timestep index
  /// @p ti; NaN when the particle is absent from that timestep.
  double value(std::size_t ti, const std::string& variable, std::size_t k) const;

  /// Mean of @p variable over the particles present at timestep index @p ti
  /// (0 when none are present).
  double mean(std::size_t ti, const std::string& variable) const;

  /// Standard deviation divided by |mean| (0 when undefined).
  double relative_spread(std::size_t ti, const std::string& variable) const;

  /// Filled by the session during construction: values_slot(ti, var)[k].
  std::vector<double>& values_slot(std::size_t ti, std::size_t var_index) {
    return values_[ti * variables_.size() + var_index];
  }

 private:
  std::size_t var_index(const std::string& variable) const;

  std::vector<std::uint64_t> ids_;
  std::vector<std::size_t> timesteps_;
  std::vector<std::string> variables_;
  // values_[ti * nvars + vi][k]: value of variable vi for particle k at
  // timestep index ti (NaN when absent).
  std::vector<std::vector<double>> values_;
};

}  // namespace qdv::core
