// Engine: the entry point of the query pipeline (DESIGN.md Section 8). Owns
// a Dataset plus a thread-safe LRU cache of evaluated per-timestep
// BitVectors, and hands out immutable Selection handles through which every
// consumer — counts, histograms, renders, traces, parallel batches — shares
// one cache.
//
// Engine is a cheap value-type handle over shared state (like io::Dataset):
// copies see the same cache. Include core/selection.hpp to use the
// Selections it returns.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>

#include "core/query.hpp"
#include "io/dataset.hpp"

namespace qdv::core {

namespace detail {
struct EngineState;
}  // namespace detail

class Selection;

/// Snapshot of the cache counters (see Engine::stats()).
struct EngineStats {
  std::uint64_t hits = 0;        // evaluations answered from the cache
  std::uint64_t misses = 0;      // evaluations that had to run
  std::uint64_t evictions = 0;   // entries dropped by the LRU policy
  std::uint64_t entries = 0;     // live cached bitvectors
  std::uint64_t bytes = 0;       // compressed bytes held by the cache

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class Engine {
 public:
  static Engine open(const std::filesystem::path& dir);
  explicit Engine(io::Dataset dataset, EvalMode mode = EvalMode::kAuto);

  const io::Dataset& dataset() const;
  std::size_t num_timesteps() const;

  /// Build an immutable Selection from query text / an AST (canonicalized
  /// and planned once; evaluation is lazy and cached per timestep).
  Selection select(const std::string& query_text) const;
  Selection select(QueryPtr query) const;

  /// The match-everything selection (unset focus/context).
  Selection all() const;

  EngineStats stats() const;
  void clear_cache();
  /// Maximum cached bitvectors; shrinking evicts immediately.
  void set_cache_capacity(std::size_t entries);
  std::size_t cache_capacity() const;

 private:
  friend class Selection;
  Engine() = default;  // used by Selection::engine()
  std::shared_ptr<detail::EngineState> state_;
};

}  // namespace qdv::core
