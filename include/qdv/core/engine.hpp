// Engine: the entry point of the query pipeline (DESIGN.md Section 8). Owns
// a Dataset plus its unified memory budget — a cost-aware LRU cache over
// evaluated per-timestep BitVectors, mapped columns, and decoded index
// segments (DESIGN.md Section 9) — and hands out immutable Selection
// handles through which every consumer (counts, histograms, renders,
// traces, parallel batches) shares one cache.
//
// Ownership: Engine is a cheap value-type handle over shared state (like
// io::Dataset); copies see the same dataset, cache, and budget, and the
// state lives until the last Engine/Selection handle drops.
// Thread-safety: all methods are safe to call concurrently; evaluation runs
// outside the cache lock (two threads may race to compute one entry — the
// first insert wins). A Selection outlives cache evictions: evicted
// bitvectors are handed out as shared_ptr and freed only when unpinned.
//
// Include core/selection.hpp to use the Selections it returns.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>

#include "core/query.hpp"
#include "io/dataset.hpp"

namespace qdv::core {

namespace detail {
struct EngineState;
}  // namespace detail

class Selection;

/// Snapshot of the engine's cache and memory-budget counters (see
/// Engine::stats()). The first block covers the bitvector cache alone (the
/// pre-out-of-core counters); the second block covers the whole budget.
struct EngineStats {
  std::uint64_t hits = 0;        // evaluations answered from the cache
  std::uint64_t misses = 0;      // evaluations that had to run
  std::uint64_t evictions = 0;   // bitvector entries dropped by the LRU policy
  std::uint64_t entries = 0;     // live cached bitvectors
  std::uint64_t bytes = 0;       // compressed bytes held by the bitvector cache

  std::uint64_t budget_bytes = 0;    // configured ceiling (max = unlimited)
  std::uint64_t resident_bytes = 0;  // all residents currently charged
  std::uint64_t column_bytes = 0;    // resident mapped column bytes
  std::uint64_t segment_bytes = 0;   // resident decoded index-segment bytes
  std::uint64_t loaded_bytes = 0;    // cumulative bytes charged (I/O volume)
  std::uint64_t io_evictions = 0;    // column + segment + pyramid evictions

  // Zoom tier (DESIGN.md §14): resident pyramid-level bytes, levels dropped
  // by the LRU, and how zoom_histogram* requests were answered.
  std::uint64_t pyramid_bytes = 0;
  std::uint64_t pyramid_evictions = 0;
  std::uint64_t pyramid_served = 0;    // answered from pyramid levels
  std::uint64_t pyramid_fallback = 0;  // routed to the exact kernel path

  // Integrity (DESIGN.md §15): checksum verification events across every
  // table of the dataset, and how often a corrupt artifact was quarantined
  // (its queries demoted to a slower-but-exact path).
  std::uint64_t integrity_verified = 0;    // checks that passed
  std::uint64_t integrity_failures = 0;    // checksum mismatches detected
  std::uint64_t integrity_demotions = 0;   // artifacts quarantined
  std::uint64_t integrity_unverified = 0;  // decodes with no recorded sum

  // SIMD dispatch (process-wide, see qdv::simd): the active ISA level and
  // per-kernel-family counts of vector vs scalar-fallback invocations.
  std::string simd_isa;
  std::uint64_t positions_vector_calls = 0;
  std::uint64_t positions_scalar_calls = 0;
  std::uint64_t hist1d_vector_calls = 0;
  std::uint64_t hist1d_scalar_calls = 0;
  std::uint64_t hist2d_vector_calls = 0;
  std::uint64_t hist2d_scalar_calls = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class Engine {
 public:
  /// Open the dataset at @p dir with default options (lazy mmap-backed io;
  /// QDV_MEMORY_BUDGET, when set, seeds the byte budget).
  static Engine open(const std::filesystem::path& dir);

  /// Adopt @p dataset (and its memory budget) for query evaluation.
  explicit Engine(io::Dataset dataset, EvalMode mode = EvalMode::kAuto);

  const io::Dataset& dataset() const;
  std::size_t num_timesteps() const;

  /// Build an immutable Selection from query text / an AST (canonicalized
  /// and planned once; evaluation is lazy and cached per timestep).
  Selection select(const std::string& query_text) const;
  Selection select(QueryPtr query) const;

  /// Thread-safe shared-plan path for concurrent services: the same query
  /// text is parsed/canonicalized/planned once (bounded per-engine plan
  /// cache) and every returned Selection shares that one ExecutionPlan, so
  /// many sessions issuing the same query share the plan object as well as
  /// the per-timestep bitvector cache. Empty text = match everything.
  std::shared_ptr<const Selection> select_shared(const std::string& query_text) const;

  /// The match-everything selection (unset focus/context).
  Selection all() const;

  EngineStats stats() const;
  void clear_cache();

  /// Maximum cached bitvectors; shrinking evicts immediately.
  void set_cache_capacity(std::size_t entries);
  std::size_t cache_capacity() const;

  /// Byte ceiling of the unified memory budget (bitvectors + columns +
  /// index segments). Shrinking evicts immediately; a single resident
  /// larger than the budget still completes as a streaming access.
  void set_memory_budget(std::uint64_t bytes);
  std::uint64_t memory_budget() const;

 private:
  friend class Selection;
  friend class Brush;     // holds an Engine member, filled in after checks
  Engine() = default;     // used by Selection::engine()
  std::shared_ptr<detail::EngineState> state_;
};

}  // namespace qdv::core
