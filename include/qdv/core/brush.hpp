// Brush: a named, mutable selection handle for linked-brushing sessions
// (DESIGN.md Section 16). Where a Selection is one immutable canonical
// query, a Brush is the thing an analyst drags: an epoch-counted sequence
// of selections, each produced from the previous one by a small edit —
// refine (AND an extra predicate), invert, or combine with another brush.
//
// The point of the class is *incremental* re-evaluation. An edit is O(1):
// it records a delta op and splices one AST node onto the composed
// predicate — no parse, no canonicalization, no planning. The brush keeps
// the last materialized bitvector per timestep (budget-resident under
// ResidentClass::kBrush), and evaluation after an edit applies the
// recorded bit operations to that cached parent — one AND/OR/NOT over
// words — instead of re-planning and re-executing the whole composed
// query, whose canonical AST generally shares no cached subtree with its
// parent (canonicalization re-sorts the operand list on every edit).
// The composed predicate is still maintained at every epoch, so the full
// from-scratch execution path always exists (the predicate is planned
// lazily, only when that path runs): it is the delta path's bit-identical
// differential twin (tests/test_brush.cpp) and the fallback when the
// parent bitvector was evicted or the edit history outran kMaxHistory.
//
// Ownership: a Brush owns its composed predicate chain and shares the
// engine state through the handle it was born from; materialized
// bitvectors live in the engine's MemoryBudget and are erased when the
// brush is destroyed.
// Thread-safety: all methods are safe to call concurrently. Edits are
// serialized by an internal mutex; evaluation runs outside it, so many
// readers can evaluate one brush while another session edits it. Readers
// pin an (epoch, composed) Snapshot first — results are always exact for
// the pinned epoch, never a torn mix of two epochs.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "core/selection.hpp"

namespace qdv::core {

class Brush {
 public:
  /// How combine() merges another brush into this one.
  enum class CombineOp {
    kAnd,     // this AND other
    kOr,      // this OR other
    kAndNot,  // this AND NOT other (subtract)
  };

  /// Shared evaluation counters (typically owned by the svc layer): how
  /// many evaluations were answered by applying deltas to a cached parent
  /// vs. by executing the composed plan from scratch.
  struct Counters {
    std::atomic<std::uint64_t> delta_evals{0};
    std::atomic<std::uint64_t> full_evals{0};
  };

  /// A pinned (epoch, composed predicate) pair. Evaluating through a
  /// snapshot is exact for that epoch even while the brush mutates — the
  /// svc layer pins one per request so an edit racing a query can never
  /// produce a torn answer (and cache keys carry the pinned epoch). The
  /// predicate is an unplanned AST handle: pinning is two words, and the
  /// plan is built only if the full-execution fallback actually runs.
  struct Snapshot {
    std::uint64_t epoch = 0;
    QueryPtr query;
  };

  /// @p initial must be a valid, non-select-all Selection (a brush is
  /// always born from a concrete predicate, so invert always has an AST
  /// form). Throws std::invalid_argument otherwise.
  explicit Brush(Selection initial, std::shared_ptr<Counters> counters = {});
  ~Brush();
  Brush(const Brush&) = delete;
  Brush& operator=(const Brush&) = delete;

  /// Process-unique id; namespaces this brush's budget keys and the svc
  /// result-cache keys built over it.
  std::uint64_t id() const { return id_; }

  /// Monotone edit counter, starting at 1. Every successful edit bumps it;
  /// two observations with equal epoch are guaranteed the same selection.
  std::uint64_t epoch() const;

  Snapshot snapshot() const;

  /// composed := composed AND extra. Returns the new epoch. O(1): splices
  /// one AST node and records the delta; nothing is re-planned.
  std::uint64_t refine(QueryPtr extra);
  /// composed := NOT composed. O(1).
  std::uint64_t invert();
  /// composed := composed <op> other's current composed selection. The
  /// operand is pinned first (other brush's lock only, never nested inside
  /// ours), so concurrent A.combine(B) / B.combine(A) cannot deadlock;
  /// combining a brush with itself is allowed.
  std::uint64_t combine(const Brush& other, CombineOp op);

  /// The matching rows at @p snap's epoch for timestep @p t. Applies
  /// recorded deltas to the cached parent bitvector when possible
  /// (Counters::delta_evals), else executes the composed plan
  /// (Counters::full_evals). The result is cached under
  /// ResidentClass::kBrush for the next edit to delta against.
  std::shared_ptr<const BitVector> bits(const Snapshot& snap, std::size_t t);

  /// Derived quantities at the snapshot epoch, computed from bits() with
  /// Selection-identical semantics (same kernels, same binning).
  std::uint64_t count(const Snapshot& snap, std::size_t t);
  std::vector<std::uint64_t> ids(const Snapshot& snap, std::size_t t);
  Histogram1D histogram1d(const Snapshot& snap, std::size_t t,
                          const std::string& variable, std::size_t nbins,
                          BinningMode binning = BinningMode::kUniform);
  Histogram2D histogram2d(const Snapshot& snap, std::size_t t,
                          const std::string& x, const std::string& y,
                          std::size_t nxbins, std::size_t nybins,
                          BinningMode binning = BinningMode::kUniform);
  SummaryStats summary(const Snapshot& snap, std::size_t t,
                       const std::string& variable);

  /// Bytes of materialized brush bitvectors currently charged to the
  /// memory budget (tracked through eviction hooks, so budget pressure is
  /// reflected here).
  std::uint64_t resident_bytes() const {
    return slot_bytes_->load(std::memory_order_relaxed);
  }

  /// Edits retained for delta evaluation. An edit burst longer than this
  /// between two evaluations falls back to one full execution (which
  /// re-seeds the delta chain) — bounded memory, identical results.
  static constexpr std::size_t kMaxHistory = 32;

 private:
  struct Op {
    enum class Kind { kRefine, kInvert, kCombine };
    Kind kind = Kind::kRefine;
    Selection operand;  // refine: the extra; combine: other's pinned composed
    CombineOp combine_op = CombineOp::kAnd;
  };

  struct Slot {
    std::uint64_t epoch = 0;  // epoch of the budget-resident bitvector
    bool valid = false;
  };

  /// Budget key of timestep @p t's bitvector at @p epoch. Epoch-stamped so
  /// a reader that decided on a delta parent under the lock can never be
  /// handed a concurrently-stored newer bitvector under the same key.
  std::string slot_key(std::size_t t, std::uint64_t epoch) const;
  /// Store @p bits as timestep @p t's parent for future deltas (callers
  /// hold no lock; losing a race to a newer epoch is a no-op).
  void store_slot(std::size_t t, std::uint64_t epoch,
                  const std::shared_ptr<const BitVector>& bits);
  std::uint64_t bump_locked(Op op);

  const std::uint64_t id_;
  std::shared_ptr<io::MemoryBudget> budget_;
  std::shared_ptr<Counters> counters_;
  // Slot byte accounting decrements from budget eviction hooks, which run
  // under the budget's own mutex — an atomic keeps them lock-free and the
  // shared_ptr keeps them safe after the brush is gone.
  std::shared_ptr<std::atomic<std::uint64_t>> slot_bytes_;

  Engine engine_;  // handle to the shared engine state (set once, const
                   // after construction; safe to use without the mutex)

  mutable std::mutex mutex_;
  std::uint64_t epoch_ = 1;
  QueryPtr composed_;  // unplanned composed predicate at epoch_
  // history_[k] transforms epoch (epoch_ - history_.size() + k) into the
  // next one; bounded at kMaxHistory (older deltas age out).
  std::deque<Op> history_;
  std::unordered_map<std::size_t, Slot> slots_;
};

}  // namespace qdv::core
