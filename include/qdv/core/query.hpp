// Boolean multivariate query AST: range comparisons, identifier-set
// membership, and logical connectives, plus a small expression parser for
// strings like "px > 8.872e10 && y > 0".
//
// Ownership: queries are immutable and shared (QueryPtr is a
// shared_ptr<const Query>); subtrees are shared freely between ASTs (e.g.
// by Selection::refine) and live as long as any referencing tree.
// Thread-safety: immutability makes every Query method safe to call
// concurrently. Evaluation against a timestep table lives in
// io/timestep_table.hpp so the AST stays free of I/O dependencies.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bitmap/interval.hpp"

namespace qdv {

enum class CompareOp { kLt, kLe, kGt, kGe, kEq };

/// The Interval matched by `value <op> constant` — the single mapping shared
/// by the planner and the index and scan evaluation paths.
Interval interval_for(CompareOp op, double value);

/// How a query (or histogram) is evaluated against a table.
enum class EvalMode {
  kAuto,   // use bitmap/id indices when available, else scan
  kIndex,  // require indices (throws when missing)
  kScan,   // sequential scan of the raw columns
};

class Query;
using QueryPtr = std::shared_ptr<const Query>;

class Query {
 public:
  enum class Kind { kCompare, kInterval, kIdIn, kAnd, kOr, kNot };

  virtual ~Query() = default;
  virtual Kind kind() const = 0;
  /// Canonical text form. Re-parseable (and round-trip exact, including
  /// double constants) for every node except IdIn, whose text carries a
  /// content hash of the search set instead — to_string() is therefore also
  /// usable as a semantic cache key.
  virtual std::string to_string() const = 0;

  static QueryPtr compare(std::string variable, CompareOp op, double value);
  static QueryPtr interval(std::string variable, Interval iv);
  static QueryPtr id_in(std::string variable, std::vector<std::uint64_t> ids);
  static QueryPtr land(QueryPtr a, QueryPtr b);
  static QueryPtr lor(QueryPtr a, QueryPtr b);
  static QueryPtr lnot(QueryPtr a);
};

/// Shortest decimal form of @p v that parses back to exactly the same
/// double (std::to_chars round-trip guarantee); used by every to_string().
std::string format_double(double v);

class CompareQuery final : public Query {
 public:
  CompareQuery(std::string variable, CompareOp op, double value)
      : variable_(std::move(variable)), op_(op), value_(value) {}
  Kind kind() const override { return Kind::kCompare; }
  std::string to_string() const override;
  const std::string& variable() const { return variable_; }
  CompareOp op() const { return op_; }
  double value() const { return value_; }

 private:
  std::string variable_;
  CompareOp op_;
  double value_;
};

/// A fused range predicate `variable in interval`, produced by the planner
/// from conjunctions of comparisons on one variable (e.g. `lo < x && x <= hi`).
/// Evaluates with a single index probe instead of one per comparison.
class IntervalQuery final : public Query {
 public:
  IntervalQuery(std::string variable, Interval iv)
      : variable_(std::move(variable)), interval_(iv) {}
  Kind kind() const override { return Kind::kInterval; }
  std::string to_string() const override;
  const std::string& variable() const { return variable_; }
  const Interval& interval() const { return interval_; }

 private:
  std::string variable_;
  Interval interval_;
};

class IdInQuery final : public Query {
 public:
  IdInQuery(std::string variable, std::vector<std::uint64_t> ids);
  Kind kind() const override { return Kind::kIdIn; }
  std::string to_string() const override;
  const std::string& variable() const { return variable_; }
  /// Sorted, deduplicated search set.
  const std::vector<std::uint64_t>& ids() const { return ids_; }

 private:
  std::string variable_;
  std::vector<std::uint64_t> ids_;
  std::uint64_t digest_ = 0;  // FNV-1a over ids_, fixed at construction
};

class AndQuery final : public Query {
 public:
  AndQuery(QueryPtr a, QueryPtr b) : a_(std::move(a)), b_(std::move(b)) {}
  Kind kind() const override { return Kind::kAnd; }
  std::string to_string() const override;
  const Query& lhs() const { return *a_; }
  const Query& rhs() const { return *b_; }

 private:
  QueryPtr a_, b_;
};

class OrQuery final : public Query {
 public:
  OrQuery(QueryPtr a, QueryPtr b) : a_(std::move(a)), b_(std::move(b)) {}
  Kind kind() const override { return Kind::kOr; }
  std::string to_string() const override;
  const Query& lhs() const { return *a_; }
  const Query& rhs() const { return *b_; }

 private:
  QueryPtr a_, b_;
};

class NotQuery final : public Query {
 public:
  explicit NotQuery(QueryPtr a) : a_(std::move(a)) {}
  Kind kind() const override { return Kind::kNot; }
  std::string to_string() const override;
  const Query& operand() const { return *a_; }

 private:
  QueryPtr a_;
};

/// Parse a range-query expression, e.g. "px > 8.872e10 && (y > 0 || !(x < 1))".
/// Grammar: comparisons `var (<|<=|>|>=|==) number` combined with `&&`, `||`,
/// `!` and parentheses. Throws std::invalid_argument on malformed input.
QueryPtr parse_query(const std::string& text);

}  // namespace qdv
