// Conditional summary statistics of one variable, evaluated through the
// same two-step query path as the histograms.
//
// Free functions over a borrowed table: the caller keeps the TimestepTable
// alive for the duration of the call; results are plain values. Safe to
// call concurrently (the table's accessors synchronize internally).
#pragma once

#include <cstdint>
#include <string>

#include "core/query.hpp"
#include "io/timestep_table.hpp"

namespace qdv::core {

struct SummaryStats {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Statistics of @p variable over the rows matching @p condition (all rows
/// when nullptr).
SummaryStats conditional_stats(const io::TimestepTable& table,
                               const std::string& variable,
                               const Query* condition = nullptr,
                               EvalMode mode = EvalMode::kAuto);

/// Statistics of @p variable over an already-evaluated row set — the path
/// Selection::summary() uses so a cached bitvector is not re-derived.
SummaryStats conditional_stats(const io::TimestepTable& table,
                               const std::string& variable,
                               const BitVector& rows);

}  // namespace qdv::core
