// The paper's "Custom" baseline: sequential scans with nested count arrays
// and O(N log S) identifier search, used as the comparison point for the
// index-backed engine in the figure benchmarks.
//
// CustomScan borrows the table it is constructed over (the caller keeps it
// alive); it holds no mutable state, so one instance may be used from
// several threads concurrently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bitmap/histogram.hpp"
#include "core/query.hpp"
#include "io/timestep_table.hpp"

namespace qdv::core {

class CustomScan {
 public:
  explicit CustomScan(const io::TimestepTable& table) : table_(&table) {}

  /// Sequential-scan 2D histogram; the condition (when given) is evaluated
  /// per record against the raw columns, never through an index.
  Histogram2D histogram2d(const std::string& x, const std::string& y,
                          std::size_t nxbins, std::size_t nybins,
                          const Query* condition = nullptr) const;

  /// Rows whose identifier is in @p search: a full scan with a binary
  /// search per record (O(N log S)).
  std::vector<std::uint32_t> find_ids(
      const std::vector<std::uint64_t>& search) const;

 private:
  const io::TimestepTable* table_;
};

}  // namespace qdv::core
