// Selection: an immutable handle to one canonicalized query over an
// Engine's dataset. All derived quantities — counts, matching ids, raw
// bitvectors, histograms, summary statistics — are served through the
// engine's shared per-timestep cache, so driving many views from one
// selection pays the index work once.
//
// Ownership: a Selection shares the engine's state (dataset + budget +
// cache) and its own immutable ExecutionPlan; copying is cheap and handles
// stay valid after the originating Engine object is destroyed.
// Thread-safety: all methods are const and safe to call concurrently, on
// one Selection or on many Selections sharing one engine/mapped dataset.
// Lifetime: bitvectors returned by bits() are shared_ptr pins — they
// survive cache eviction; spans inside histogram/ids paths come from the
// dataset's tables and stay valid for the table's lifetime.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bitmap/histogram.hpp"
#include "core/engine.hpp"
#include "core/plan.hpp"
#include "core/statistics.hpp"

namespace qdv::core {

/// How zoom_histogram* answers. kAuto serves from the pyramid tier whenever
/// the request is geometrically servable and falls back to the exact kernel
/// path otherwise; kExact always runs the kernels — on the same snapped
/// grid when the request is servable, so it is the bit-exact differential
/// twin of the kAuto answer (test_pyramid / the bombard verify phase).
enum class ZoomMode { kAuto, kExact };

/// The resolved pyramid route of one servable zoom request: the snapped
/// level/bin windows. Pure geometry (edges only, no counts) — computed
/// identically by zoom_plan*() and the serve itself, which is what lets the
/// svc layer build level-tagged cache keys that cannot diverge from the
/// served result.
struct ZoomPlan {
  std::size_t level = 0;
  std::size_t xlo = 0, xhi = 0;  // snapped bin window on the zoom x axis
  std::size_t ylo = 0, yhi = 0;  // 2D zooms only
  bool pair = false;             // served from a pair pyramid
  bool operator==(const ZoomPlan&) const = default;
};

struct Zoom1DResult {
  Histogram1D hist;
  bool pyramid = false;  // true when served from pyramid levels
  int level = -1;        // snapped level (also set on the kExact twin)
};

struct Zoom2DResult {
  Histogram2D hist;
  bool pyramid = false;
  int level = -1;
};

class Selection {
 public:
  /// Invalid handle; assign from Engine::select() / Engine::all() before use.
  Selection() = default;

  bool valid() const { return state_ != nullptr; }
  /// True for the match-everything selection (no predicate).
  bool selects_all() const;

  /// Number of records matching at timestep @p t.
  std::uint64_t count(std::size_t t) const;

  /// Identifier values ("id" column) of the matching records, row-ascending.
  std::vector<std::uint64_t> ids(std::size_t t) const;

  /// The evaluated (cached, shared) bitvector at timestep @p t.
  std::shared_ptr<const BitVector> bits(std::size_t t) const;

  /// This selection AND an extra condition — a new Selection whose leaf
  /// bitvectors are shared with this one through the cache.
  Selection refine(const std::string& query_text) const;
  Selection refine(QueryPtr extra) const;

  /// Conditional histograms over the table-local domains, tallying only the
  /// matching records (bins shared with HistogramEngine semantics).
  Histogram1D histogram1d(std::size_t t, const std::string& variable,
                          std::size_t nbins,
                          BinningMode binning = BinningMode::kUniform) const;
  Histogram2D histogram2d(std::size_t t, const std::string& x,
                          const std::string& y, std::size_t nxbins,
                          std::size_t nybins,
                          BinningMode binning = BinningMode::kUniform) const;

  /// Zoom/pan histograms (DESIGN.md §14): @p nbins bins over the viewport
  /// [view_lo, view_hi) of @p variable, restricted to this selection. Under
  /// kAuto a servable request — marginal conjunction predicate, viewport
  /// wide enough for nbins at some pyramid level, condition decidable by
  /// node descent — snaps the viewport to pyramid-level bin edges and is
  /// answered in O(visible bins); anything else runs the exact kernels over
  /// viewport-uniform bins. The served edges are the snapped grid, so
  /// consecutive pans that snap identically share one svc cache entry.
  /// Throws std::invalid_argument unless view_hi > view_lo and nbins > 0.
  Zoom1DResult zoom_histogram1d(std::size_t t, const std::string& variable,
                                double view_lo, double view_hi,
                                std::size_t nbins,
                                ZoomMode mode = ZoomMode::kAuto) const;
  Zoom2DResult zoom_histogram2d(std::size_t t, const std::string& x,
                                const std::string& y, double view_lo_x,
                                double view_hi_x, double view_lo_y,
                                double view_hi_y, std::size_t nxbins,
                                std::size_t nybins,
                                ZoomMode mode = ZoomMode::kAuto) const;

  /// The pyramid route the matching zoom_histogram* call would take, or
  /// nullopt when it would run the exact fallback. Never throws on bad
  /// viewports (returns nullopt), so cache-key builders can call it first.
  std::optional<ZoomPlan> zoom_plan1d(std::size_t t,
                                      const std::string& variable,
                                      double view_lo, double view_hi,
                                      std::size_t nbins) const;
  std::optional<ZoomPlan> zoom_plan2d(std::size_t t, const std::string& x,
                                      const std::string& y, double view_lo_x,
                                      double view_hi_x, double view_lo_y,
                                      double view_hi_y, std::size_t nxbins,
                                      std::size_t nybins) const;

  /// Summary statistics of @p variable over the matching records.
  SummaryStats summary(std::size_t t, const std::string& variable) const;

  /// The canonical AST (nullptr when selects_all()).
  const QueryPtr& query() const;
  const ExecutionPlan& plan() const;  // throws on an invalid handle
  const std::string& cache_key() const;
  std::string explain() const;

  Engine engine() const;

 private:
  friend class Engine;
  Selection(std::shared_ptr<detail::EngineState> state,
            std::shared_ptr<const ExecutionPlan> plan);

  const io::TimestepTable& table(std::size_t t) const;

  std::shared_ptr<detail::EngineState> state_;
  std::shared_ptr<const ExecutionPlan> plan_;
};

}  // namespace qdv::core
