// Selection: an immutable handle to one canonicalized query over an
// Engine's dataset. All derived quantities — counts, matching ids, raw
// bitvectors, histograms, summary statistics — are served through the
// engine's shared per-timestep cache, so driving many views from one
// selection pays the index work once.
//
// Ownership: a Selection shares the engine's state (dataset + budget +
// cache) and its own immutable ExecutionPlan; copying is cheap and handles
// stay valid after the originating Engine object is destroyed.
// Thread-safety: all methods are const and safe to call concurrently, on
// one Selection or on many Selections sharing one engine/mapped dataset.
// Lifetime: bitvectors returned by bits() are shared_ptr pins — they
// survive cache eviction; spans inside histogram/ids paths come from the
// dataset's tables and stay valid for the table's lifetime.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bitmap/histogram.hpp"
#include "core/engine.hpp"
#include "core/plan.hpp"
#include "core/statistics.hpp"

namespace qdv::core {

class Selection {
 public:
  /// Invalid handle; assign from Engine::select() / Engine::all() before use.
  Selection() = default;

  bool valid() const { return state_ != nullptr; }
  /// True for the match-everything selection (no predicate).
  bool selects_all() const;

  /// Number of records matching at timestep @p t.
  std::uint64_t count(std::size_t t) const;

  /// Identifier values ("id" column) of the matching records, row-ascending.
  std::vector<std::uint64_t> ids(std::size_t t) const;

  /// The evaluated (cached, shared) bitvector at timestep @p t.
  std::shared_ptr<const BitVector> bits(std::size_t t) const;

  /// This selection AND an extra condition — a new Selection whose leaf
  /// bitvectors are shared with this one through the cache.
  Selection refine(const std::string& query_text) const;
  Selection refine(QueryPtr extra) const;

  /// Conditional histograms over the table-local domains, tallying only the
  /// matching records (bins shared with HistogramEngine semantics).
  Histogram1D histogram1d(std::size_t t, const std::string& variable,
                          std::size_t nbins,
                          BinningMode binning = BinningMode::kUniform) const;
  Histogram2D histogram2d(std::size_t t, const std::string& x,
                          const std::string& y, std::size_t nxbins,
                          std::size_t nybins,
                          BinningMode binning = BinningMode::kUniform) const;

  /// Summary statistics of @p variable over the matching records.
  SummaryStats summary(std::size_t t, const std::string& variable) const;

  /// The canonical AST (nullptr when selects_all()).
  const QueryPtr& query() const;
  const ExecutionPlan& plan() const;  // throws on an invalid handle
  const std::string& cache_key() const;
  std::string explain() const;

  Engine engine() const;

 private:
  friend class Engine;
  Selection(std::shared_ptr<detail::EngineState> state,
            std::shared_ptr<const ExecutionPlan> plan);

  const io::TimestepTable& table(std::size_t t) const;

  std::shared_ptr<detail::EngineState> state_;
  std::shared_ptr<const ExecutionPlan> plan_;
};

}  // namespace qdv::core
