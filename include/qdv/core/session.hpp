// ExplorationSession: the user-facing facade tying the query engine,
// dataset, tracking, and rendering layers together — open a dataset, set
// focus/context selections (query strings, query objects, or Selection
// handles), and derive counts, histograms, traces, and figure renderings
// from them. A thin layer over core::Engine: focus and context are
// Selections, so every derived view shares the engine's bitvector cache.
//
// Ownership: holds an Engine by value (shared state — copies of the
// session or extra Engine handles see the same dataset, cache, and
// budget). Thread-safety: the focus/context setters are NOT synchronized —
// mutate a session from one thread; the const derivation methods only read
// engine-shared state and may run concurrently with each other.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "bitmap/histogram.hpp"
#include "core/engine.hpp"
#include "core/selection.hpp"
#include "core/tracks.hpp"
#include "io/dataset.hpp"
#include "render/pc_plot.hpp"

namespace qdv::core {

/// Options of the focus+context parallel-coordinates view.
struct PcViewOptions {
  std::size_t context_bins = 120;  // bins/axis of the context layer
  std::size_t focus_bins = 256;    // bins/axis of the focus layer
  BinningMode binning = BinningMode::kUniform;
  render::Color context_color = render::colors::kGray;
  render::Color focus_color = render::colors::kRed;
  double context_gamma = 1.0;
  double focus_gamma = 1.0;
  render::PcLayout layout;
};

class ExplorationSession {
 public:
  static ExplorationSession open(const std::filesystem::path& dir);
  explicit ExplorationSession(Engine engine);

  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }
  const io::Dataset& dataset() const { return engine_.dataset(); }
  std::size_t num_timesteps() const { return engine_.num_timesteps(); }

  /// The focus selection: the particles under analysis. Unset = all records
  /// (focus().selects_all()).
  void set_focus(const std::string& query_text);
  void set_focus(QueryPtr query);
  void set_focus(Selection selection);
  void clear_focus();
  const Selection& focus() const { return focus_; }

  /// The context selection restricting the background view (all records
  /// when unset).
  void set_context(const std::string& query_text);
  void set_context(QueryPtr query);
  void set_context(Selection selection);
  void clear_context();
  const Selection& context() const { return context_; }

  /// Number of records matching the focus at timestep @p t.
  std::uint64_t focus_count(std::size_t t) const;

  /// Identifiers of the records matching the focus at timestep @p t.
  std::vector<std::uint64_t> selected_ids(std::size_t t) const;

  /// Global [min, max] of a variable across all timesteps.
  std::pair<double, double> global_domain(const std::string& name) const;

  /// 2D histograms of each adjacent axis pair for the records matching
  /// @p selection, binned over the global domains (shared across timesteps,
  /// so figures align).
  std::vector<Histogram2D> pair_histograms(std::size_t t,
                                           const std::vector<std::string>& axes,
                                           std::size_t bins_per_axis,
                                           const Selection& selection,
                                           BinningMode binning =
                                               BinningMode::kUniform) const;

  /// All-records variant.
  std::vector<Histogram2D> pair_histograms(std::size_t t,
                                           const std::vector<std::string>& axes,
                                           std::size_t bins_per_axis,
                                           BinningMode binning =
                                               BinningMode::kUniform) const;

  /// Trace @p ids over timesteps [t_from, t_to], recording @p variables.
  ParticleTracks track(const std::vector<std::uint64_t>& ids, std::size_t t_from,
                       std::size_t t_to,
                       const std::vector<std::string>& variables) const;

  /// Focus+context histogram-based parallel coordinates (Figures 4/5/10).
  render::Image render_parallel_coordinates(std::size_t t,
                                            const std::vector<std::string>& axes,
                                            const PcViewOptions& options = {}) const;

  /// Temporal parallel coordinates: the focus at each timestep of
  /// [t_from, t_to] in a distinct color (Figure 9).
  render::Image render_temporal(std::size_t t_from, std::size_t t_to,
                                const std::vector<std::string>& axes,
                                const PcViewOptions& options = {}) const;

  /// Physical-space pseudocolor scatter: context records dim, focus records
  /// colored by @p color_variable (Figures 5/6/8/10).
  render::Image render_scatter(std::size_t t, const std::string& x,
                               const std::string& y,
                               const std::string& color_variable) const;

 private:
  std::vector<render::PcAxis> make_axes(const std::vector<std::string>& names) const;

  Engine engine_;
  Selection focus_;    // engine_.all() when unset
  Selection context_;  // engine_.all() when unset
};

}  // namespace qdv::core
