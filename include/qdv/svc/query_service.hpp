// QueryService: the concurrent query-service layer (DESIGN.md Section 11).
// One shared core::Engine serves many client sessions: requests pass an
// admission/priority queue executed on the persistent par::ThreadPool,
// identical in-flight requests coalesce onto a single execution
// (single-flight per canonical plan cache key), completed results are
// cached in the engine's unified io::MemoryBudget, and per-client fairness
// and byte budgets bound what any one session can queue.
//
// Ownership: QueryService is a handle over shared state co-owned by every
// in-flight pool task, so workers can never outlive the data they touch;
// the destructor drains the queue before releasing the handle.
// Thread-safety: every method is safe to call concurrently from any
// thread. Do not destroy the service from inside a pool task it scheduled
// (the drain would wait on itself).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bitmap/histogram.hpp"
#include "core/brush.hpp"
#include "core/engine.hpp"
#include "core/selection.hpp"
#include "core/statistics.hpp"

namespace qdv::dist {
class Coordinator;
}

namespace qdv::svc {

/// Admission classes, strongest first: a queued interactive request always
/// dispatches before queued normal/batch work.
enum class Priority : unsigned {
  kInteractive = 0,
  kNormal = 1,
  kBatch = 2,
};

inline constexpr std::size_t kNumPriorities = 3;

/// What a request computes. All kinds are reads; they differ only in the
/// derived quantity gathered after the (shared, cached) selection evaluates.
enum class RequestKind {
  kCount,        // matching-record count
  kIds,          // matching identifier values, row-ascending
  kHistogram1D,  // conditional 1D histogram of var_x
  kHistogram2D,  // conditional 2D histogram of var_x x var_y
  kSummary,      // summary statistics of var_x
  kZoom1D,       // viewport histogram of var_x (pyramid tier, DESIGN.md §14)
  kZoom2D,       // viewport histogram of var_x x var_y
};

struct Request {
  RequestKind kind = RequestKind::kCount;
  std::string query;        // query text; empty = all records
  std::size_t timestep = 0;
  Priority priority = Priority::kNormal;

  /// Evaluate against this session's named brush (DESIGN.md §16) instead
  /// of `query` — the two are mutually exclusive, and zoom kinds reject
  /// brushes (the pyramid tier serves unconditioned marginal shapes). The
  /// request pins the brush's (epoch, composed selection) at submission,
  /// and its result-cache key carries that epoch: an edit racing the query
  /// can never produce a torn or stale answer.
  std::string brush;

  std::string var_x;        // histogram / summary / zoom variable
  std::string var_y;        // second histogram2d / zoom2d variable
  std::size_t nxbins = 64;
  std::size_t nybins = 64;
  BinningMode binning = BinningMode::kUniform;

  // kZoom1D/kZoom2D viewport (view_hi must exceed view_lo per axis). Under
  // kAuto, servable requests snap to pyramid-level bin edges and carry
  // level-tagged cache keys; kExact forces the kernel path (the bombard
  // verify/baseline mode) and is never served from or stored in the result
  // cache.
  double view_lo_x = 0.0;
  double view_hi_x = 0.0;
  double view_lo_y = 0.0;
  double view_hi_y = 0.0;
  core::ZoomMode zoom_mode = core::ZoomMode::kAuto;

  /// Time budget from submission, milliseconds; 0 = none. The deadline
  /// propagates through the queue: a flight whose deadline passes before
  /// dispatch — or whose distributed merge finishes past it — resolves
  /// kDeadlineExpired instead of wasting an evaluation (a result already
  /// computed locally is still returned). Coalesced attaches keep the
  /// leader's deadline.
  std::uint64_t deadline_ms = 0;
};

enum class Status {
  kOk,
  kError,            // evaluation threw (message in Result::error)
  kRejectedQueue,    // admission queue at max_queue
  kRejectedBudget,   // session in-flight byte budget exhausted
  kShutdown,         // service stopping
  kRetryLater,       // load-shed at shed_queue_depth; retry after the hint
  kDeadlineExpired,  // request deadline passed before an answer was produced
};

/// How a completed request's Result was produced. A request coalesced onto
/// an in-flight execution receives the executing flight's Result (served ==
/// kExecuted; ServiceStats::coalesce_hits counts the attaches).
enum class Served {
  kExecuted,   // an evaluation ran for this Result
  kCached,     // answered from the budget-resident result cache
};

/// The outcome of one request. Shared immutable payload: every coalesced
/// requester receives the same Result object.
struct Result {
  Status status = Status::kOk;
  std::string error;
  RequestKind kind = RequestKind::kCount;  // what was computed

  std::uint64_t count = 0;            // kCount (and total of ids)
  std::vector<std::uint64_t> ids;     // kIds
  Histogram1D hist1d;                 // kHistogram1D / kZoom1D
  Histogram2D hist2d;                 // kHistogram2D / kZoom2D
  core::SummaryStats summary;         // kSummary
  bool pyramid = false;               // zoom kinds: served from pyramid levels
  int pyramid_level = -1;             // snapped level when pyramid (else -1)

  /// Brush requests: the brush epoch this result was computed at (0 for
  /// plain queries). The serve path cross-checks it against the pinned
  /// epoch on every result-cache hit — a mismatch is a stale hit
  /// (ServiceStats::brush_stale_hits) and forces a re-execution instead of
  /// serving the wrong epoch's histogram.
  std::uint64_t brush_epoch = 0;

  std::uint64_t payload_bytes = 0;    // response-payload size (accounting)
  Served served = Served::kExecuted;
  double exec_seconds = 0.0;          // evaluation time (0 when kCached)
  /// 1-based execution ordinal of the producing flight (0 for rejections
  /// and cache-served copies) — makes dispatch order observable, which is
  /// what the priority/fairness tests assert on.
  std::uint64_t sequence = 0;
};

using ResultPtr = std::shared_ptr<const Result>;
using ResultFuture = std::shared_future<ResultPtr>;

struct ServiceConfig {
  /// Max requests evaluating concurrently; 0 = thread-pool size.
  std::size_t max_concurrency = 0;
  /// Max queued flights (coalesced attaches don't count). Beyond this,
  /// submissions are rejected with kRejectedQueue.
  std::size_t max_queue = 1024;
  /// Default per-session budget for estimated in-flight response bytes
  /// (kUnlimited = none). A session whose queued + executing requests
  /// exceed it gets kRejectedBudget until work drains.
  std::uint64_t session_budget_bytes = kUnlimitedBudget;
  /// Keep completed results resident in the engine's io::MemoryBudget
  /// (ResidentClass::kResult) so repeats are answered without re-executing;
  /// they compete in the same LRU as columns/segments/bitvectors. The
  /// class is additionally capped at max_cached_results entries so an
  /// unlimited budget cannot accrete distinct results without bound.
  bool cache_results = true;
  std::size_t max_cached_results = 1024;
  /// Results with payloads above this are not cached (caching copies the
  /// payload once; a full-table id dump is not worth that copy or the
  /// budget residency — in-flight coalescing still dedupes concurrent
  /// duplicates of any size).
  std::uint64_t max_cached_result_bytes = 1 << 20;
  /// Completed-request latency samples retained for the percentiles.
  std::size_t latency_capacity = 1 << 14;

  /// Load shedding: queued flights at/above this depth bounce new
  /// submissions with Status::kRetryLater and a retry_after_ms hint —
  /// cheaper for everyone than queueing work that will blow its latency
  /// target. 0 disables (only the hard max_queue cap rejects then).
  std::size_t shed_queue_depth = 0;
  /// Backoff hint carried by kRetryLater rejections.
  std::uint64_t retry_after_ms = 50;

  /// Most named brushes one session may hold live (brush create beyond it
  /// fails with a typed error). Each brush is also charged an estimated
  /// bitvector's worth of bytes against the session byte budget while it
  /// lives, so brush state competes with in-flight requests under the one
  /// session ceiling.
  std::size_t max_brushes_per_session = 64;

  static constexpr std::uint64_t kUnlimitedBudget = ~std::uint64_t{0};
};

/// Outcome of one brush verb (create/refine/invert/combine/drop). Edits
/// are metadata operations — they record the delta and bump the epoch;
/// bitvector work happens lazily at the next query against the brush.
struct BrushOutcome {
  Status status = Status::kOk;
  std::string error;              // set when status != kOk
  std::string name;
  std::uint64_t epoch = 0;        // brush epoch after the verb
  std::uint64_t resident_bytes = 0;  // materialized brush bytes right now
  std::uint64_t session_brushes = 0; // live brushes in the session after
};

/// Value at quantile @p q (in [0, 1]) of an ascending-sorted sample set,
/// nearest-rank; 0 when empty. The one percentile definition shared by
/// ServiceStats and the bombard latency reporter.
double sorted_percentile(std::span<const double> sorted_ascending, double q);

/// Snapshot of the service counters (see QueryService::stats()).
struct ServiceStats {
  // Invariant once idle: submitted == completed + rejected_queue +
  // rejected_budget + rejected_shutdown.
  std::uint64_t submitted = 0;        // all submissions (incl. rejected)
  std::uint64_t completed = 0;        // requests whose future resolved kOk/kError
  std::uint64_t failed = 0;           // completed with Status::kError
  std::uint64_t rejected_queue = 0;
  std::uint64_t rejected_budget = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_shed = 0;     // load-shed with kRetryLater
  std::uint64_t deadline_expired = 0;  // flights resolved kDeadlineExpired

  std::uint64_t executed = 0;           // flights that ran an evaluation
  std::uint64_t coalesce_hits = 0;      // attached to an in-flight execution
  std::uint64_t result_cache_hits = 0;  // served from the cached result

  // Zoom-tier routing of executed zoom flights (cache/coalesce hits of
  // zoom results count above, not here — they never touch the engine).
  std::uint64_t pyramid_served = 0;
  std::uint64_t pyramid_fallback = 0;

  // Integrity (DESIGN.md §15), mirrored from the engine's dataset-wide
  // counters: checksum checks passed/failed, artifacts quarantined (their
  // queries demoted to slower-but-exact paths), and unverified decodes.
  std::uint64_t integrity_verified = 0;
  std::uint64_t integrity_failures = 0;
  std::uint64_t integrity_demotions = 0;
  std::uint64_t integrity_unverified = 0;

  // Linked-brushing sessions (DESIGN.md §16). brush_edits counts
  // refine/invert/combine verbs; brush_queries counts completed requests
  // evaluated against a brush; delta/full split how those evaluations were
  // answered (bit ops on a cached parent vs. composed-plan execution).
  // brush_stale_hits is a tripwire: a cached brush result whose epoch
  // disagreed with the pinned epoch at serve time — structurally
  // impossible while epoch-tagged keys work, asserted zero in CI.
  std::uint64_t brush_count = 0;        // live brushes across sessions
  std::uint64_t brush_creates = 0;
  std::uint64_t brush_edits = 0;
  std::uint64_t brush_drops = 0;
  std::uint64_t brush_queries = 0;
  std::uint64_t brush_delta_evals = 0;
  std::uint64_t brush_full_evals = 0;
  std::uint64_t brush_bytes = 0;        // budget-resident brush bitvector bytes
  std::uint64_t brush_stale_hits = 0;

  std::uint64_t queue_depth = 0;      // flights waiting right now
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t inflight = 0;         // flights executing right now
  std::uint64_t open_sessions = 0;
  std::uint64_t bytes_served = 0;     // cumulative result payload bytes

  // Completed-request latency (submit -> resolve), seconds, over the
  // retained sample window.
  std::uint64_t latency_samples = 0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double max_seconds = 0.0;

  // Distributed scatter/gather (all zero unless a dist::Coordinator is
  // attached — see QueryService::set_distributor()). Mirrors
  // dist::DistStats, plus the service-side fallback counter.
  std::uint64_t dist_workers = 0;          // workers ever attached
  std::uint64_t dist_alive = 0;            // workers currently live
  std::uint64_t dist_queries = 0;          // scatter/gather executions
  std::uint64_t dist_scatters = 0;         // shard sub-requests sent
  std::uint64_t dist_gathers = 0;          // partial results merged
  std::uint64_t dist_retries = 0;          // bounded per-worker retries
  std::uint64_t dist_reshards = 0;         // windows reassigned after deaths
  std::uint64_t dist_deaths = 0;           // workers declared dead
  std::uint64_t dist_remote_errors = 0;    // query-level worker errors
  std::uint64_t dist_local_fallbacks = 0;  // flights that fell back local
  /// Per-worker scatter/failure/retry counters (name = socket filename).
  struct DistWorker {
    std::string name;
    bool alive = true;
    std::uint64_t requests = 0;
    std::uint64_t failures = 0;
    std::uint64_t retries = 0;
  };
  std::vector<DistWorker> dist_per_worker;

  /// Fraction of accepted requests served without their own evaluation
  /// (in-flight attach or result-cache hit).
  double coalesce_rate() const {
    const std::uint64_t accepted = executed + coalesce_hits + result_cache_hits;
    return accepted == 0 ? 0.0
                         : static_cast<double>(coalesce_hits + result_cache_hits) /
                               static_cast<double>(accepted);
  }
};

class QueryService {
 public:
  using SessionId = std::uint64_t;

  explicit QueryService(core::Engine engine, ServiceConfig config = {});
  /// Drains queued and executing work, then releases the shared state.
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Register a client session. Passing kUnlimitedBudget (the default)
  /// inherits the config's session_budget_bytes; any other value overrides
  /// the per-session in-flight byte budget.
  SessionId open_session(std::string name = {},
                         std::uint64_t budget_bytes = ServiceConfig::kUnlimitedBudget);
  void close_session(SessionId session);

  /// Enqueue @p request. Never blocks on evaluation: the returned future
  /// resolves when the request completes, coalesces, or is rejected
  /// (rejections resolve immediately with the rejecting Status).
  ResultFuture submit(SessionId session, Request request);

  /// submit() + wait. Convenience for synchronous callers (wire server).
  ResultPtr execute(SessionId session, Request request);

  /// Brush verbs (protocol v5, DESIGN.md §16): named mutable selections
  /// scoped to @p session. All synchronous — edits only record deltas and
  /// bump the brush epoch; evaluation happens at the next submitted
  /// request carrying Request::brush. Errors (unknown session/brush, bad
  /// name, unparseable query text, brush cap, budget) come back as typed
  /// BrushOutcome statuses, never exceptions.
  BrushOutcome brush_create(SessionId session, const std::string& name,
                            const std::string& query_text);
  BrushOutcome brush_refine(SessionId session, const std::string& name,
                            const std::string& query_text);
  BrushOutcome brush_invert(SessionId session, const std::string& name);
  BrushOutcome brush_combine(SessionId session, const std::string& name,
                             const std::string& other,
                             core::Brush::CombineOp op);
  BrushOutcome brush_drop(SessionId session, const std::string& name);

  /// Block until no request is queued or executing.
  void drain();

  /// Attach a distributed-execution coordinator: decomposable requests
  /// (counts, ids, uniform-bin histograms) scatter across its worker
  /// processes and merge bit-identically; everything else — and any flight
  /// the coordinator cannot serve (all workers dead) — runs on the local
  /// engine. Admission, coalescing, and result caching are unchanged: the
  /// distributed path only replaces the evaluation inside a flight, keyed
  /// by the same canonical plan. Pass nullptr to detach.
  void set_distributor(std::shared_ptr<dist::Coordinator> coordinator);
  std::shared_ptr<dist::Coordinator> distributor() const;

  ServiceStats stats() const;
  const core::Engine& engine() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace qdv::svc
