// Unix-domain-socket front end of the query service: `qdv_tool serve` hosts
// a SocketServer over one QueryService; clients (including `qdv_tool
// bombard` and the tests) speak the line protocol of svc/protocol.hpp, one
// service session per connection.
//
// Ownership: the server borrows the QueryService — the caller keeps it
// alive until stop() returns. Thread model: one accept thread plus one
// thread per connection; stop() closes every socket and joins them all.
// POSIX-only (AF_UNIX), like the mmap-backed io layer.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>

#include "svc/query_service.hpp"

namespace qdv::svc {

class SocketServer {
 public:
  /// Binds and listens on @p socket_path (an existing socket file there is
  /// removed first); throws std::runtime_error on any socket failure.
  SocketServer(QueryService& service, std::filesystem::path socket_path);
  ~SocketServer();  // stop()s if still running
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Start the accept loop (idempotent).
  void start();
  /// Close the listener and every live connection, join all threads, and
  /// unlink the socket file (idempotent).
  void stop();

  const std::filesystem::path& socket_path() const;
  /// Connections accepted so far.
  std::uint64_t connections() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Blocking line-protocol client used by bombard and the tests. All socket
/// I/O runs full-line loops (EINTR restarts, partial reads/writes resume),
/// and an optional SO_RCVTIMEO bounds every response wait.
class SocketClient {
 public:
  /// Connect to a listening SocketServer and perform the `hello v=N`
  /// version handshake; throws std::runtime_error on failure — including
  /// a protocol version mismatch, reported with the server's own message
  /// (retries connecting briefly while the server is still coming up).
  /// @p receive_timeout > 0 bounds every response wait; a stalled server
  /// then throws instead of wedging the caller forever.
  explicit SocketClient(const std::filesystem::path& socket_path,
                        std::chrono::milliseconds receive_timeout =
                            std::chrono::milliseconds{0});
  ~SocketClient();
  SocketClient(SocketClient&& other) noexcept;
  SocketClient& operator=(SocketClient&&) = delete;
  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  /// Send one request line, wait for the one response line.
  std::string request(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes read past the last response line
};

}  // namespace qdv::svc
