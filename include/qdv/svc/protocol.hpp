// Line protocol of the qdv query service (DESIGN.md Section 11): one
// newline-terminated request per line, one newline-terminated response.
// Text-only so sessions can be driven by hand (`nc -U`), replayed from
// files, and asserted in tests.
//
// Requests:   <op> [t=N] [x=VAR] [y=VAR] [bins=N] [ybins=N] [adaptive=1]
//             [vlo=F] [vhi=F] [ylo=F] [yhi=F] [exact=1] [deadline=MS]
//             [pri=0|1|2] [limit=N] [q=QUERY TEXT TO END OF LINE]
//   ops: hello | count | ids | hist1 | hist2 | sum | zoom1 | zoom2
//        | stats | ping | quit
//   `q=` must come last — everything after it (spaces included) is the
//   query; omitting it selects all records.
//   zoom1/zoom2 take the viewport as vlo=/vhi= (x axis) and ylo=/yhi=
//   (zoom2's y axis); exact=1 forces the kernel path (ZoomMode::kExact).
//   Their responses carry `pyr=0|1 level=N`: whether the histogram was
//   served from pyramid levels and at which snapped level.
//   deadline=MS gives the request a time budget in milliseconds; a request
//   that cannot be answered in time fails with `err deadline-expired`. A
//   load-shedding server answers `err retry-after: ...` — back off and
//   resend (DESIGN.md Section 15).
// Responses:  `ok <key>=<value> ...` or `err <message>`.
//
// Versioning: a connection opens with a `hello v=N` greeting; the server
// answers `ok qdv v=N` when N matches kProtocolVersion and closes with a
// clear `err protocol version mismatch ...` otherwise — a stale qdv_tool
// talking to a newer server (or vice versa) fails loudly on its first
// line, not obscurely mid-session. SocketClient performs the greeting
// automatically; hand-driven sessions (`nc -U`) must send it first.
//
// Stateless free functions; safe to call concurrently.
#pragma once

#include <cstdint>
#include <string>

#include "svc/query_service.hpp"

namespace qdv::svc {

/// Line-protocol version. Bumped whenever the request/response shapes
/// change incompatibly; the hello greeting pins it per connection.
inline constexpr unsigned kProtocolVersion = 4;

/// One parsed request line.
struct WireRequest {
  enum class Op { kQuery, kStats, kPing, kQuit, kHello };
  Op op = Op::kQuery;
  Request request;            // valid when op == kQuery
  std::size_t ids_limit = 16; // ids listed in the response (limit=N)
  unsigned hello_version = 0; // v= of a hello line (op == kHello)
};

/// Parse @p line into @p out. False (with @p error set) on a malformed
/// line; the server answers those with `err`.
bool parse_request_line(const std::string& line, WireRequest& out,
                        std::string& error);

/// Canonical text of @p request (parse_request_line round-trips it).
std::string format_request_line(const WireRequest& request);

/// `ok ...` / `err ...` response line for a completed request.
std::string format_response_line(const Result& result, std::size_t ids_limit);

/// `ok ...` response line for the `stats` op.
std::string format_stats_line(const ServiceStats& stats);

/// Minimal response split for clients: true on `ok`, false on `err` (body
/// receives everything after the tag either way).
bool parse_response_line(const std::string& line, std::string& body);

}  // namespace qdv::svc
