// Line protocol of the qdv query service (DESIGN.md Section 11): one
// newline-terminated request per line, one newline-terminated response.
// Text-only so sessions can be driven by hand (`nc -U`), replayed from
// files, and asserted in tests.
//
// Requests:   <op> [t=N] [x=VAR] [y=VAR] [bins=N] [ybins=N] [adaptive=1]
//             [vlo=F] [vhi=F] [ylo=F] [yhi=F] [exact=1] [deadline=MS]
//             [pri=0|1|2] [limit=N] [brush=NAME]
//             [q=QUERY TEXT TO END OF LINE]
//   ops: hello | count | ids | hist1 | hist2 | sum | zoom1 | zoom2
//        | brush | stats | ping | quit
//   `q=` must come last — everything after it (spaces included) is the
//   query; omitting it selects all records.
//   zoom1/zoom2 take the viewport as vlo=/vhi= (x axis) and ylo=/yhi=
//   (zoom2's y axis); exact=1 forces the kernel path (ZoomMode::kExact).
//   Their responses carry `pyr=0|1 level=N`: whether the histogram was
//   served from pyramid levels and at which snapped level.
//   deadline=MS gives the request a time budget in milliseconds; a request
//   that cannot be answered in time fails with `err deadline-expired`. A
//   load-shedding server answers `err retry-after: ...` — back off and
//   resend (DESIGN.md Section 15).
//
// Brush verbs (v5, DESIGN.md Section 16) — named mutable selections scoped
// to the connection's session:
//   brush create  name=B q=PREDICATE
//   brush refine  name=B q=EXTRA PREDICATE
//   brush invert  name=B
//   brush combine name=B with=C op=and|or|andnot
//   brush drop    name=B
//   Each answers `ok brush=B epoch=E bytes=N brushes=K` (E = the brush's
//   monotone edit epoch) or a typed `err`. Query ops then evaluate against
//   a brush with `brush=B` in place of `q=` (zooms excepted); their `ok`
//   responses carry `epoch=E` — the epoch the answer is exact for.
// Responses:  `ok <key>=<value> ...` or `err <message>`.
//
// Versioning: a connection opens with a `hello v=N` greeting; the server
// answers `ok qdv v=N` when N matches kProtocolVersion and closes with a
// clear `err protocol version mismatch ...` otherwise — a stale qdv_tool
// talking to a newer server (or vice versa) fails loudly on its first
// line, not obscurely mid-session. SocketClient performs the greeting
// automatically; hand-driven sessions (`nc -U`) must send it first.
//
// Stateless free functions; safe to call concurrently.
#pragma once

#include <cstdint>
#include <string>

#include "svc/query_service.hpp"

namespace qdv::svc {

/// Line-protocol version. Bumped whenever the request/response shapes
/// change incompatibly; the hello greeting pins it per connection.
/// v5: brush verbs + brush= on query ops (and strict numeric fields).
inline constexpr unsigned kProtocolVersion = 5;

/// One parsed request line.
struct WireRequest {
  enum class Op { kQuery, kBrush, kStats, kPing, kQuit, kHello };
  enum class BrushAction { kCreate, kRefine, kInvert, kCombine, kDrop };
  Op op = Op::kQuery;
  Request request;            // valid when op == kQuery (q= also feeds
                              // brush create/refine via request.query)
  std::size_t ids_limit = 16; // ids listed in the response (limit=N)
  unsigned hello_version = 0; // v= of a hello line (op == kHello)

  // op == kBrush only.
  BrushAction brush_action = BrushAction::kCreate;
  std::string brush_name;     // name=
  std::string brush_with;     // with= (combine)
  core::Brush::CombineOp brush_combine_op = core::Brush::CombineOp::kAnd;
};

/// Strict numeric field parsers used by the wire layer (and by qdv_tool's
/// argument handling): the whole token must parse — trailing garbage,
/// overflow, locale decimal forms, and non-finite doubles all reject.
bool parse_size(const std::string& text, std::size_t& out);
bool parse_double(const std::string& text, double& out);

/// Parse @p line into @p out. False (with @p error set) on a malformed
/// line; the server answers those with `err`.
bool parse_request_line(const std::string& line, WireRequest& out,
                        std::string& error);

/// Canonical text of @p request (parse_request_line round-trips it).
std::string format_request_line(const WireRequest& request);

/// `ok ...` / `err ...` response line for a completed request.
std::string format_response_line(const Result& result, std::size_t ids_limit);

/// `ok ...` response line for the `stats` op.
std::string format_stats_line(const ServiceStats& stats);

/// `ok brush=... epoch=...` / `err ...` response line for a brush verb.
std::string format_brush_response_line(const BrushOutcome& outcome);

/// Minimal response split for clients: true on `ok`, false on `err` (body
/// receives everything after the tag either way).
bool parse_response_line(const std::string& line, std::string& body);

}  // namespace qdv::svc
