#!/usr/bin/env bash
# Fail when the qdv_tool subcommand set and the docs/qdv_tool.md reference
# diverge: every command printed by `qdv_tool --help` must have a matching
# `## <command>` heading in the docs, and vice versa.
#
# Usage: check_docs_consistency.sh <path-to-qdv_tool> <path-to-qdv_tool.md>
set -euo pipefail

tool="$1"
doc="$2"

# Command headings are single lowercase words ("## query"); prose sections
# ("## Appendix: ...") are ignored.
help_cmds=$("$tool" --help | awk '/^commands:/{f=1; next} f && NF==0 {exit} f {print $1}' | sort)
doc_cmds=$(grep -E '^## [a-z_]+$' "$doc" | awk '{print $2}' | sort)

if [ -z "$help_cmds" ]; then
  echo "error: could not parse a command list from '$tool --help'" >&2
  exit 1
fi

if [ "$help_cmds" != "$doc_cmds" ]; then
  echo "error: docs/qdv_tool.md headings diverge from qdv_tool --help" >&2
  echo "--- commands from --help / +++ headings from docs" >&2
  diff <(printf '%s\n' "$help_cmds") <(printf '%s\n' "$doc_cmds") >&2 || true
  exit 1
fi

echo "docs consistent:" $help_cmds
