#!/usr/bin/env bash
# Fail when a raw POSIX I/O call creeps in outside the one sanctioned choke
# point. Every pread/read/write/send/recv in the library must go through
# io::io_util (DESIGN.md §15) so EINTR retries, short-transfer loops, and
# fault injection stay in exactly one place.
#
# Usage: check_raw_io.sh <repo-root>
set -euo pipefail

root="$1"

# Call sites use the explicit global-namespace form (::pread(...)), which
# is what the codebase standardizes on for raw syscalls — so that is what
# the lint matches. io_util.cpp implements the wrappers; mapped_file.cpp
# owns mmap/open/close but routes reads through io_util.
offenders=$(grep -rnE '(^|[^[:alnum:]_])::(pread|pwrite|read|write|send|recv)[[:space:]]*\(' \
    "$root/src" "$root/include" \
    --include='*.cpp' --include='*.hpp' \
    | grep -v 'src/io/io_util.cpp' \
    | grep -vE '(read_full|write_full|send_full|recv_full|recv_some|pread_full)' \
    || true)

if [ -n "$offenders" ]; then
  echo "error: raw I/O syscalls outside io::io_util — route them through" >&2
  echo "io_util.hpp so EINTR/short-transfer/fault handling stays central:" >&2
  printf '%s\n' "$offenders" >&2
  exit 1
fi

echo "raw io check passed: all pread/read/write/send/recv go through io_util"
