#!/usr/bin/env bash
# Runs the kernel-comparison benchmarks and assembles BENCH_kernels.json:
# old (scalar) vs new (block-kernel) rows for the kernel microbenchmarks,
# fig12 conditional histograms, and the fig14/15 parallel histogram batch.
#
#   scripts/run_benchmarks.sh <build-dir> [output.json]
#
# Sizes scale via the usual QDV_BENCH_* environment variables; CI's smoke
# job runs with tiny sizes (the benchmarks assert kernel/reference result
# equality regardless of size, so the smoke run still verifies correctness).
set -euo pipefail

build_dir=${1:?usage: run_benchmarks.sh <build-dir> [output.json]}
output=${2:-BENCH_kernels.json}
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

run() {
  local name=$1
  shift
  echo "[run_benchmarks] $name ..." >&2
  "$@" --json "$tmpdir/$name.json" > "$tmpdir/$name.txt"
  tail -n +1 "$tmpdir/$name.txt" | sed "s/^/[$name] /" >&2
}

run kernels "$build_dir/bench_kernels"
run fig12 "$build_dir/bench_fig12_conditional_hist"
run fig14_15 "$build_dir/bench_fig14_15_parallel_hist"

# Merge the per-bench JSON arrays into one object keyed by bench name.
{
  echo '{'
  echo "  \"host_threads\": ${QDV_THREADS:-$(nproc 2>/dev/null || echo 1)},"
  first=1
  for name in kernels fig12 fig14_15; do
    [ $first -eq 1 ] || echo ','
    first=0
    printf '  "%s":\n' "$name"
    sed 's/^/  /' "$tmpdir/$name.json" | printf '%s' "$(cat)"
  done
  echo
  echo '}'
} > "$output"

echo "[run_benchmarks] wrote $output" >&2
