#!/usr/bin/env bash
# Runs the kernel-comparison benchmarks and assembles BENCH_kernels.json:
# old (scalar) vs new (block-kernel) rows for the kernel microbenchmarks,
# fig12 conditional histograms, and the fig14/15 parallel histogram batch.
# When the build contains qdv_tool, also runs the seeded `bombard` workload
# against an in-process query service and writes BENCH_service.json
# (p50/p95/p99 request latency + server coalescing counters). The
# distributed sweep (1/2/4 real worker processes behind the coordinator,
# results verified bit-identical to the local engine) lands in
# BENCH_distributed.json, and the zoom/pan pyramid workload (every request
# differentially verified pyramid-vs-exact before timing) in
# BENCH_pyramid.json.
#
#   scripts/run_benchmarks.sh <build-dir> [kernels.json] [service.json] [distributed.json] [pyramid.json] [brush.json]
#
# Sizes scale via the usual QDV_BENCH_* environment variables; CI's smoke
# job runs with tiny sizes (the benchmarks assert kernel/reference result
# equality regardless of size, so the smoke run still verifies correctness).
set -euo pipefail

build_dir=${1:?usage: run_benchmarks.sh <build-dir> [kernels.json] [service.json] [distributed.json] [pyramid.json] [brush.json]}
output=${2:-BENCH_kernels.json}
service_output=${3:-BENCH_service.json}
dist_output=${4:-BENCH_distributed.json}
pyramid_output=${5:-BENCH_pyramid.json}
brush_output=${6:-BENCH_brush.json}
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

run() {
  local name=$1
  shift
  echo "[run_benchmarks] $name ..." >&2
  "$@" --json "$tmpdir/$name.json" > "$tmpdir/$name.txt"
  tail -n +1 "$tmpdir/$name.txt" | sed "s/^/[$name] /" >&2
}

run kernels "$build_dir/bench_kernels"
run fig12 "$build_dir/bench_fig12_conditional_hist"
run fig14_15 "$build_dir/bench_fig14_15_parallel_hist"

# Merge the per-bench JSON arrays into one object keyed by bench name.
{
  echo '{'
  echo "  \"host_threads\": ${QDV_THREADS:-$(nproc 2>/dev/null || echo 1)},"
  first=1
  for name in kernels fig12 fig14_15; do
    [ $first -eq 1 ] || echo ','
    first=0
    printf '  "%s":\n' "$name"
    sed 's/^/  /' "$tmpdir/$name.json" | printf '%s' "$(cat)"
  done
  echo
  echo '}'
} > "$output"

echo "[run_benchmarks] wrote $output" >&2

# Service workload: seeded concurrent bombard through the unix-socket line
# protocol (self-hosted server). Skipped when the build has no qdv_tool
# (QDV_BUILD_EXAMPLES=OFF).
if [ -x "$build_dir/qdv_tool" ]; then
  svc_data=${QDV_BENCH_DATA_DIR:-$tmpdir}/service_ds
  if [ ! -f "$svc_data/qdv_manifest.txt" ]; then
    echo "[run_benchmarks] generating service dataset ..." >&2
    "$build_dir/qdv_tool" generate "$svc_data" --preset bench \
      --particles "${QDV_BENCH_SERVICE_PARTICLES:-50000}" \
      --timesteps "${QDV_BENCH_SERVICE_TIMESTEPS:-6}" --seed 42 >&2
  fi
  echo "[run_benchmarks] bombard ..." >&2
  "$build_dir/qdv_tool" bombard "$svc_data" \
    --clients "${QDV_BENCH_SERVICE_CLIENTS:-8}" \
    --requests "${QDV_BENCH_SERVICE_REQUESTS:-200}" \
    --seed 42 --dup 0.5 --json "$service_output" >&2
  echo "[run_benchmarks] wrote $service_output" >&2

  # Zoom/pan pyramid workload: bombard's zoom scenario verifies every
  # distinct request pyramid-vs-exact (bit-identical or the run exits
  # nonzero) BEFORE timing, then reports the wire hit rate and the
  # pyramid-served vs forced-exact latency split. One client by default:
  # the point is the per-request pyramid-vs-exact latency gap, and on a
  # small host concurrent exact fallbacks time-slice against pyramid
  # serves, polluting the tail with scheduler noise that BENCH_service.json
  # already characterizes.
  echo "[run_benchmarks] bombard --scenario zoom ..." >&2
  "$build_dir/qdv_tool" bombard "$svc_data" \
    --scenario zoom \
    --clients "${QDV_BENCH_ZOOM_CLIENTS:-1}" \
    --requests "${QDV_BENCH_ZOOM_REQUESTS:-${QDV_BENCH_SERVICE_REQUESTS:-200}}" \
    --seed 42 --json "$pyramid_output" >&2
  echo "[run_benchmarks] wrote $pyramid_output" >&2

  # Linked-brushing workload (DESIGN.md §16): each client drives a named
  # brush through refine-then-query rounds against a fresh server, then a
  # second fresh server replays every composed predicate cold at the same
  # concurrency. Every cold count must match the brush-path count
  # bit-for-bit and the stale-cache tripwire must stay zero, or the run
  # exits nonzero. The JSON records the edit-then-query vs cold
  # re-execution p50/p99 split (speedup_p50 is the headline number).
  echo "[run_benchmarks] bombard --scenario brush ..." >&2
  "$build_dir/qdv_tool" bombard "$svc_data" \
    --scenario brush \
    --clients "${QDV_BENCH_BRUSH_CLIENTS:-4}" \
    --requests "${QDV_BENCH_BRUSH_EDITS:-64}" \
    --seed 42 --json "$brush_output" >&2
  echo "[run_benchmarks] wrote $brush_output" >&2
else
  echo "[run_benchmarks] no qdv_tool in $build_dir: skipping service bench" >&2
fi

# Distributed sweep: 1/2/4 worker processes behind the coordinator, every
# merged result checked bit-identical against the local engine before it
# is timed. The JSON rows carry both honest wall seconds and the makespan
# model (per-shard worker CPU seconds); host_cpus in each row says which
# regime the wall numbers came from.
if [ -x "$build_dir/bench_distributed" ]; then
  run distributed "$build_dir/bench_distributed"
  cp "$tmpdir/distributed.json" "$dist_output"
  echo "[run_benchmarks] wrote $dist_output" >&2
else
  echo "[run_benchmarks] no bench_distributed in $build_dir: skipping distributed bench" >&2
fi
